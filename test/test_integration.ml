(* Integration tests: whole DIFs in virtual time — enrollment, naming,
   flow allocation, relaying, failover, access control, recursion. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types
module Policy = Rina_core.Policy
module Qos = Rina_core.Qos
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario
module Workload = Rina_exp.Workload
module Metrics = Rina_util.Metrics
module Trace = Rina_sim.Trace
module Flight = Rina_util.Flight
module Trace_report = Rina_check.Trace_report

let check = Alcotest.check

let wait engine d = Engine.run ~until:(Engine.now engine +. d) engine

(* ---------- enrollment and bootstrap ---------- *)

let test_two_member_enrollment () =
  let net = Topo.line ~n:2 () in
  Array.iter
    (fun m -> Alcotest.(check bool) "enrolled" true (Ipcp.is_enrolled m))
    net.Topo.nodes;
  check Alcotest.int "bootstrap addr" 1 (Ipcp.address net.Topo.nodes.(0));
  check Alcotest.int "joiner addr" 2 (Ipcp.address net.Topo.nodes.(1));
  check Alcotest.int "lsdb both" 2 (Ipcp.lsdb_size net.Topo.nodes.(0));
  check Alcotest.int "lsdb both'" 2 (Ipcp.lsdb_size net.Topo.nodes.(1))

let test_unique_addresses_star () =
  (* Concurrent enrollments through different members must never remap
     the same address (regression: the duplicate-address race). *)
  let net = Topo.star ~leaves:6 () in
  let addrs = Array.to_list (Array.map Ipcp.address net.Topo.nodes) in
  let sorted = List.sort_uniq compare addrs in
  check Alcotest.int "all addresses distinct" (Array.length net.Topo.nodes)
    (List.length sorted);
  Alcotest.(check bool) "no zero addresses" true (List.for_all (fun a -> a > 0) addrs)

let test_auth_enrollment_denied () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 3 in
  let policy = { Policy.default with Policy.auth = Policy.Auth_password "secret" } in
  let dif = Dif.create engine ~policy "locked" in
  let a = Dif.add_member dif ~credentials:"secret" ~name:"good" () in
  let b = Dif.add_member dif ~credentials:"WRONG" ~name:"bad" () in
  let link = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a link, Link.endpoint_b link);
  wait engine 10.;
  Alcotest.(check bool) "bad member rejected" false (Ipcp.is_enrolled b);
  Alcotest.(check bool) "denials recorded" true
    (Metrics.get (Ipcp.metrics a) "enroll_denied" >= 1)

let test_auth_enrollment_accepted () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 3 in
  let policy = { Policy.default with Policy.auth = Policy.Auth_password "secret" } in
  let dif = Dif.create engine ~policy "locked" in
  let a = Dif.add_member dif ~credentials:"secret" ~name:"one" () in
  let b = Dif.add_member dif ~credentials:"secret" ~name:"two" () in
  let link = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a link, Link.endpoint_b link);
  Dif.run_until_converged dif ~max_time:20. ();
  Alcotest.(check bool) "both enrolled" true (Ipcp.is_enrolled a && Ipcp.is_enrolled b)

(* ---------- naming and flows ---------- *)

let test_flow_bidirectional_transfer () =
  let net = Topo.line ~n:2 () in
  let engine = net.Topo.engine in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, alloc_latency) ->
    Alcotest.(check bool) "allocation latency positive" true (alloc_latency >= 0.);
    let echoes = ref 0 in
    flow.Ipcp.set_on_receive (fun _ -> incr echoes);
    for i = 1 to 20 do
      flow.Ipcp.send (Bytes.of_string (Printf.sprintf "msg %d" i))
    done;
    wait engine 5.;
    check Alcotest.int "forward delivered" 20 sink.Workload.count;
    Alcotest.(check bool) "port ids local and positive" true (flow.Ipcp.port_id > 0)

let test_large_sdu_fragmentation () =
  let net = Topo.line ~n:2 () in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    (* Far beyond the 1400-byte MTU: must arrive as ONE intact SDU. *)
    flow.Ipcp.send (Workload.stamp ~now:(Engine.now net.Topo.engine) ~seq:0 ~size:20_000);
    wait net.Topo.engine 5.;
    check Alcotest.int "one SDU" 1 sink.Workload.count;
    check Alcotest.int "full size" 20_000 sink.Workload.bytes

let test_unknown_name_fails () =
  let net = Topo.line ~n:2 () in
  let result = ref None in
  Scenario.allocate net ~src:0 ~dst_app:(Types.apn "nobody-home") ~qos_id:0 (fun r ->
      result := Some r);
  match !result with
  | Some (Error e) ->
    Alcotest.(check bool) "mentions the name" true
      (String.length e > 0 && String.starts_with ~prefix:"destination name not found" e)
  | Some (Ok _) -> Alcotest.fail "allocated to a ghost"
  | None -> Alcotest.fail "did not resolve"

let test_acl_denies_flow () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 5 in
  let policy =
    { Policy.default with Policy.acl = Policy.Allow_pairs [ ("alice", "server") ] }
  in
  let dif = Dif.create engine ~policy "restricted" in
  let a = Dif.add_member dif ~name:"n0" () in
  let b = Dif.add_member dif ~name:"n1" () in
  let link = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a link, Link.endpoint_b link);
  Dif.run_until_converged dif ();
  Ipcp.register_app b (Types.apn "server") ~on_flow:(fun _ -> ());
  Ipcp.register_app a (Types.apn "alice") ~on_flow:(fun _ -> ());
  Ipcp.register_app a (Types.apn "mallory") ~on_flow:(fun _ -> ());
  let results = ref [] in
  Ipcp.allocate_flow a ~src:(Types.apn "alice") ~dst:(Types.apn "server") ~qos_id:0
    ~on_result:(fun r -> results := ("alice", r) :: !results);
  Ipcp.allocate_flow a ~src:(Types.apn "mallory") ~dst:(Types.apn "server") ~qos_id:0
    ~on_result:(fun r -> results := ("mallory", r) :: !results);
  wait engine 15.;
  check Alcotest.int "both resolved" 2 (List.length !results);
  List.iter
    (fun (who, r) ->
      match (who, r) with
      | "alice", Ok _ -> ()
      | "mallory", Error e -> check Alcotest.string "denied" "access denied" e
      | "alice", Error e -> Alcotest.fail ("alice denied: " ^ e)
      | _, Ok _ -> Alcotest.fail "mallory admitted"
      | _, _ -> Alcotest.fail "unexpected")
    !results

let test_flow_close_frees_state () =
  let net = Topo.line ~n:2 () in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    flow.Ipcp.send (Bytes.of_string "before close");
    wait net.Topo.engine 2.;
    flow.Ipcp.close ();
    wait net.Topo.engine 2.;
    check Alcotest.int "delivered before close" 1 sink.Workload.count;
    check Alcotest.int "both endpoints clean" 0
      (List.length (Ipcp.debug_flows net.Topo.nodes.(0))
       + List.length (Ipcp.debug_flows net.Topo.nodes.(1)));
    (* Sending after close is a silent no-op. *)
    flow.Ipcp.send (Bytes.of_string "after close");
    wait net.Topo.engine 2.;
    check Alcotest.int "no delivery after close" 1 sink.Workload.count

let test_admission_busy_retry () =
  (* With admission_max_pending = 1, the destination busy-rejects the
     second concurrent request (result 4, a transient condition) and
     the requester retries behind a jittered exponential backoff — so
     once the first flow closes, the waiting request gets in.  Nothing
     here errors out: admission pressure delays, it does not fail. *)
  let policy =
    {
      Policy.default with
      Policy.congestion =
        {
          Policy.default_congestion with
          Policy.admission_max_pending = 1;
          admission_backoff = 0.02;
        };
    }
  in
  let net = Topo.line ~n:2 ~policy () in
  let engine = net.Topo.engine in
  let a = net.Topo.nodes.(0) and b = net.Topo.nodes.(1) in
  Ipcp.register_app b (Types.apn "busy-svc") ~on_flow:(fun _ -> ());
  Ipcp.register_app a (Types.apn "c1") ~on_flow:(fun _ -> ());
  Ipcp.register_app a (Types.apn "c2") ~on_flow:(fun _ -> ());
  let results = Array.make 2 None in
  List.iteri
    (fun i src ->
      Ipcp.allocate_flow a ~src:(Types.apn src) ~dst:(Types.apn "busy-svc")
        ~qos_id:0 ~on_result:(fun r -> results.(i) <- Some r))
    [ "c1"; "c2" ];
  wait engine 5.;
  let ok_flows =
    Array.to_list results
    |> List.filter_map (function Some (Ok f) -> Some f | _ -> None)
  in
  check Alcotest.int "exactly one admitted while the slot is held" 1
    (List.length ok_flows);
  Alcotest.(check bool) "destination counted busy rejections" true
    (Metrics.get (Ipcp.metrics b) "alloc_busy_rejected" >= 1);
  Alcotest.(check bool) "requester counted busy retries" true
    (Metrics.get (Ipcp.metrics a) "alloc_busy" >= 1);
  (* Free the slot: the backed-off request must now be admitted. *)
  (List.hd ok_flows).Ipcp.close ();
  wait engine 5.;
  let ok_after =
    Array.to_list results
    |> List.filter_map (function Some (Ok f) -> Some f | _ -> None)
  in
  check Alcotest.int "waiting request admitted after close" 2
    (List.length ok_after);
  Alcotest.(check bool) "no allocation failed" true
    (Array.for_all
       (function Some (Error _) -> false | _ -> true)
       results)

let test_directory_updates_after_unregister () =
  let net = Topo.line ~n:2 () in
  let app = Types.apn "transient" in
  Ipcp.register_app net.Topo.nodes.(1) app ~on_flow:(fun _ -> ());
  wait net.Topo.engine 2.;
  Alcotest.(check bool) "resolvable at peer" true
    (Ipcp.resolve_name net.Topo.nodes.(0) app <> None);
  Ipcp.unregister_app net.Topo.nodes.(1) app;
  wait net.Topo.engine 2.;
  Alcotest.(check bool) "withdrawn at peer" true
    (Ipcp.resolve_name net.Topo.nodes.(0) app = None)

(* ---------- relaying ---------- *)

let test_relay_line_of_four () =
  let net = Topo.line ~n:4 () in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:3 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    for _ = 1 to 10 do
      flow.Ipcp.send (Bytes.make 500 'r')
    done;
    wait net.Topo.engine 10.;
    check Alcotest.int "delivered end to end" 10 sink.Workload.count;
    Alcotest.(check bool) "middle nodes relayed" true
      (Metrics.get (Ipcp.rmt_metrics net.Topo.nodes.(1)) "relayed" > 0
       && Metrics.get (Ipcp.rmt_metrics net.Topo.nodes.(2)) "relayed" > 0)

let test_mgmt_pdus_are_relayed () =
  (* Flow allocation itself crosses a relay: nodes 0 and 2 are not
     adjacent, so the M_CREATE had to be forwarded by node 1. *)
  let net = Topo.line ~n:3 () in
  match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:0 () with
  | Error e -> Alcotest.fail e
  | Ok _ -> ()

(* ---------- failover / multihoming ---------- *)

let test_multihoming_local_failover () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 7 in
  let dif = Dif.create engine "mh" in
  let a = Dif.add_member dif ~name:"a" () in
  let b = Dif.add_member dif ~name:"b" () in
  let l1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
  let l2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect dif a b (Link.endpoint_a l2, Link.endpoint_b l2);
  Dif.run_until_converged dif ();
  (match Ipcp.neighbors a with
   | [ (_, ports) ] -> check Alcotest.int "two points of attachment" 2 (List.length ports)
   | _ -> Alcotest.fail "expected one neighbour");
  let got = ref 0 in
  Ipcp.register_app b (Types.apn "svc") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun _ -> incr got));
  Ipcp.register_app a (Types.apn "cli") ~on_flow:(fun _ -> ());
  let flow = ref None in
  Ipcp.allocate_flow a ~src:(Types.apn "cli") ~dst:(Types.apn "svc") ~qos_id:1
    ~on_result:(function Ok f -> flow := Some f | Error e -> Alcotest.fail e);
  wait engine 5.;
  (match !flow with
   | Some f ->
     f.Ipcp.send (Bytes.of_string "one");
     wait engine 1.;
     Link.set_up l1 false;
     f.Ipcp.send (Bytes.of_string "two");
     wait engine 3.;
     check Alcotest.int "both delivered (reliable over failover)" 2 !got;
     Alcotest.(check bool) "local reroute counted" true
       (Metrics.get (Ipcp.metrics a) "local_reroute"
        + Metrics.get (Ipcp.metrics b) "local_reroute"
        >= 1)
   | None -> Alcotest.fail "no flow")

(* The flight-recorder view of the same failover: a steady stream over
   a multihomed pair, one attachment killed mid-stream.  The recorder
   must capture the reroute as a Handoff event, and the interruption
   window reported offline (Trace_report.delivery_gap) must agree with
   the trace's own largest_gap over EFCP deliveries. *)
let test_traced_failover_interruption_window () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 13 in
  let dif = Dif.create engine "mh" in
  let a = Dif.add_member dif ~name:"a" () in
  let b = Dif.add_member dif ~name:"b" () in
  let l1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 ~label:"l1" () in
  let l2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 ~label:"l2" () in
  Dif.connect dif a b (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect dif a b (Link.endpoint_a l2, Link.endpoint_b l2);
  Dif.run_until_converged dif ();
  let got = ref 0 in
  Ipcp.register_app b (Types.apn "svc") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun _ -> incr got));
  Ipcp.register_app a (Types.apn "cli") ~on_flow:(fun _ -> ());
  let flow = ref None in
  Ipcp.allocate_flow a ~src:(Types.apn "cli") ~dst:(Types.apn "svc") ~qos_id:1
    ~on_result:(function Ok f -> flow := Some f | Error e -> Alcotest.fail e);
  wait engine 5.;
  let f = Option.get !flow in
  let tr = Trace.create engine in
  Trace.attach tr;
  let sent = ref 0 in
  let rec pump () =
    if !sent < 40 then begin
      incr sent;
      f.Ipcp.send (Bytes.create 32);
      ignore (Engine.schedule engine ~delay:0.05 pump)
    end
  in
  pump ();
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> Link.set_up l1 false));
  wait engine 10.;
  Trace.detach ();
  check Alcotest.int "stream delivered across failover" 40 !got;
  let evs = Trace.typed_events tr in
  check Alcotest.bool "handoff recorded" true
    (List.exists (fun ev -> ev.Flight.kind = Flight.Handoff) evs);
  let report = Trace_report.delivery_gap ~component:"efcp" evs in
  let legacy = Trace.largest_gap tr ~component:"efcp" ~event:"pdu_recvd" in
  (match (report, legacy) with
  | Some (g1, s1), Some (g2, s2) ->
    check (Alcotest.float 1e-9) "same gap" g2 g1;
    check (Alcotest.float 1e-9) "same start" s2 s1;
    (* the interruption window sits at the failure, and dwarfs the
       50 ms inter-send spacing of the undisturbed stream *)
    check Alcotest.bool "gap is the outage" true (g1 > 0.05 && s1 >= 0.9)
  | _ -> Alcotest.fail "expected a delivery gap")

let test_ring_reroutes_after_link_failure () =
  (* Square ring 0-1-2-3-0: kill 0-1; 0 must still reach 1 the long
     way after the LSAs propagate. *)
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 9 in
  let dif = Dif.create engine "ring" in
  let nodes = Array.init 4 (fun i -> Dif.add_member dif ~name:(Printf.sprintf "r%d" i) ()) in
  let links =
    Array.init 4 (fun i ->
        let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
        Dif.connect dif nodes.(i) nodes.((i + 1) mod 4)
          (Link.endpoint_a l, Link.endpoint_b l);
        l)
  in
  Dif.run_until_converged dif ();
  let sink = Workload.sink () in
  Ipcp.register_app nodes.(1) (Types.apn "dst") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now engine) sdu));
  Ipcp.register_app nodes.(0) (Types.apn "src") ~on_flow:(fun _ -> ());
  let flow = ref None in
  Ipcp.allocate_flow nodes.(0) ~src:(Types.apn "src") ~dst:(Types.apn "dst") ~qos_id:1
    ~on_result:(function Ok f -> flow := Some f | Error e -> Alcotest.fail e);
  wait engine 5.;
  let f = Option.get !flow in
  f.Ipcp.send (Bytes.of_string "direct");
  wait engine 2.;
  Link.set_up links.(0) false;
  wait engine 2.;
  f.Ipcp.send (Bytes.of_string "the long way");
  wait engine 5.;
  check Alcotest.int "both arrived" 2 sink.Workload.count;
  (* The reroute shows up as relaying at 3 or 2. *)
  Alcotest.(check bool) "rerouted around the ring" true
    (Metrics.get (Ipcp.rmt_metrics nodes.(3)) "relayed" > 0
     || Metrics.get (Ipcp.rmt_metrics nodes.(2)) "relayed" > 0)

(* ---------- recursion ---------- *)

let test_stacked_dif_transfer () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 11 in
  let mk_link () = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let lower = Dif.create engine "lower" in
  let la = Dif.add_member lower ~name:"la" () in
  let lb = Dif.add_member lower ~name:"lb" () in
  let l = mk_link () in
  Dif.connect lower la lb (Link.endpoint_a l, Link.endpoint_b l);
  Dif.run_until_converged lower ();
  let upper = Dif.create engine "upper" in
  let ua = Dif.add_member upper ~name:"ua" () in
  let ub = Dif.add_member upper ~name:"ub" () in
  Dif.stack_connect ~lower_a:la ~lower_b:lb ~upper_a:ua ~upper_b:ub ();
  Dif.run_until_converged upper ~max_time:30. ();
  Alcotest.(check bool) "upper members enrolled" true
    (Ipcp.is_enrolled ua && Ipcp.is_enrolled ub);
  let got = ref [] in
  Ipcp.register_app ub (Types.apn "up-app") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu -> got := Bytes.to_string sdu :: !got));
  Ipcp.register_app ua (Types.apn "up-cli") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow ua ~src:(Types.apn "up-cli") ~dst:(Types.apn "up-app") ~qos_id:1
    ~on_result:(function
      | Ok f -> f.Ipcp.send (Bytes.of_string "recursion works")
      | Error e -> Alcotest.fail e);
  wait engine 10.;
  check Alcotest.(list string) "delivered through two ranks" [ "recursion works" ] !got;
  (* The lower DIF carried real flows for the upper one. *)
  Alcotest.(check bool) "lower flows allocated" true
    (Metrics.get (Ipcp.metrics la) "flows_allocated" >= 2)

(* ---------- security plumbing ---------- *)

let test_unauthenticated_injection_dropped () =
  let net = Topo.line ~n:2 () in
  let engine = net.Topo.engine in
  let b = net.Topo.nodes.(1) in
  (* Attacker taps a fresh wire to member b and injects a well-formed
     data PDU aimed at b's address. *)
  let rng = Rina_util.Prng.create 13 in
  let l = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  ignore (Ipcp.bind_port b (Link.endpoint_b l));
  let before = Metrics.get (Ipcp.metrics b) "unknown_cep" in
  let pdu =
    Rina_core.Pdu.make ~pdu_type:Rina_core.Pdu.Dtp ~dst_addr:(Ipcp.address b)
      ~src_addr:1 ~dst_cep:1 ~src_cep:1 ~seq:1 (Bytes.of_string "evil")
  in
  (Link.endpoint_a l).Rina_sim.Chan.send
    (Rina_core.Sdu_protection.protect (Rina_core.Pdu.encode pdu));
  wait engine 2.;
  Alcotest.(check bool) "dropped at ingress" true
    (Metrics.get (Ipcp.rmt_metrics b) "ingress_dropped" >= 1);
  check Alcotest.int "never reached a flow" before
    (Metrics.get (Ipcp.metrics b) "unknown_cep")

let test_dif_helpers_and_trace () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 19 in
  let trace = Rina_sim.Trace.create engine in
  let dif = Dif.create engine ~trace "traced" in
  check Alcotest.string "name" "traced" (Dif.name dif);
  Alcotest.(check bool) "engine accessor" true (Dif.engine dif == engine);
  Alcotest.(check bool) "default policy" true (Dif.policy dif = Policy.default);
  let a = Dif.add_member dif ~name:"alpha" () in
  let b = Dif.add_member dif ~name:"beta" () in
  check Alcotest.int "members" 2 (List.length (Dif.members dif));
  Alcotest.(check bool) "find by name" true
    (match Dif.find_member dif "alpha" with Some x -> x == a | None -> false);
  Alcotest.(check bool) "find missing" true
    (match Dif.find_member dif "gamma" with Some _ -> false | None -> true);
  let l = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a l, Link.endpoint_b l);
  Dif.run_until_converged dif ();
  (* The trace recorded the lifecycle: bootstrap + enrollment. *)
  Alcotest.(check bool) "bootstrap traced" true
    (Rina_sim.Trace.count trace ~component:"traced:alpha/1" ~event:"bootstrapped" = 1);
  Alcotest.(check bool) "enrollment traced" true
    (Rina_sim.Trace.count trace ~component:"traced:beta/1" ~event:"enrolled" = 1)

let test_unknown_qos_falls_back_to_best_effort () =
  let net = Topo.line ~n:2 () in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:777 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    check Alcotest.string "fell back" "best-effort" flow.Ipcp.qos.Qos.name;
    flow.Ipcp.send (Bytes.make 64 'q');
    wait net.Topo.engine 2.;
    check Alcotest.int "still works" 1 sink.Workload.count

let test_member_leave_withdraws_everything () =
  (* Triangle 0-1-2: member 2 leaves gracefully; its name disappears
     from the directory, routes to it vanish, and 0<->1 still works. *)
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 15 in
  let dif = Dif.create engine "tri" in
  let nodes = Array.init 3 (fun i -> Dif.add_member dif ~name:(Printf.sprintf "t%d" i) ()) in
  let wire a b =
    let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
    Dif.connect dif nodes.(a) nodes.(b) (Link.endpoint_a l, Link.endpoint_b l)
  in
  wire 0 1;
  wire 1 2;
  wire 2 0;
  Dif.run_until_converged dif ();
  let leaver_addr = Ipcp.address nodes.(2) in
  Ipcp.register_app nodes.(2) (Types.apn "doomed") ~on_flow:(fun _ -> ());
  wait engine 2.;
  Alcotest.(check bool) "name visible before" true
    (Ipcp.resolve_name nodes.(0) (Types.apn "doomed") <> None);
  Ipcp.leave nodes.(2);
  wait engine 3.;
  Alcotest.(check bool) "left" false (Ipcp.is_enrolled nodes.(2));
  Alcotest.(check bool) "name withdrawn" true
    (Ipcp.resolve_name nodes.(0) (Types.apn "doomed") = None);
  Alcotest.(check bool) "no route to the leaver" true
    (List.for_all (fun (dst, _, _) -> dst <> leaver_addr)
       (Ipcp.routing_table nodes.(0)));
  (* Remaining members still talk. *)
  let got = ref 0 in
  Ipcp.register_app nodes.(1) (Types.apn "still-here") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun _ -> incr got));
  Ipcp.register_app nodes.(0) (Types.apn "caller") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow nodes.(0) ~src:(Types.apn "caller") ~dst:(Types.apn "still-here")
    ~qos_id:1
    ~on_result:(function
      | Ok f -> f.Ipcp.send (Bytes.of_string "alive")
      | Error e -> Alcotest.fail e);
  wait engine 10.;
  check Alcotest.int "survivors communicate" 1 !got

let test_leave_then_reenroll () =
  let net = Topo.line ~n:2 () in
  let engine = net.Topo.engine in
  let b = net.Topo.nodes.(1) in
  let old_addr = Ipcp.address b in
  Ipcp.leave b;
  wait engine 2.;
  Alcotest.(check bool) "unenrolled" false (Ipcp.is_enrolled b);
  (* Opt back in: hellos still flow on the surviving wire, so b
     re-enrolls and gets a fresh address from the namespace manager. *)
  Ipcp.set_auto_enroll b true;
  wait engine 10.;
  Alcotest.(check bool) "re-enrolled" true (Ipcp.is_enrolled b);
  Alcotest.(check bool) "fresh address" true
    (Ipcp.address b > 0 && Ipcp.address b <> old_addr)

let test_grant_timeout_then_retry () =
  (* Enrollment through a member whose route to the namespace manager
     is down: the grant request times out, the joiner retries, and
     once the path heals everyone enrolls with distinct addresses. *)
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 17 in
  let dif = Dif.create engine "slowpath" in
  let m0 = Dif.add_member dif ~name:"mgr" () in
  let m1 = Dif.add_member dif ~name:"mid" () in
  let m2 = Dif.add_member dif ~name:"edge" () in
  let l01 = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  let l12 = Link.create engine rng ~bit_rate:1_000_000. ~delay:0.001 () in
  Dif.connect dif m0 m1 (Link.endpoint_a l01, Link.endpoint_b l01);
  Dif.run_until_converged dif ~max_time:15. ();
  (* Cut mid<->mgr silently, then attach the edge node to mid. *)
  Link.set_blackhole l01 true;
  Dif.connect dif m1 m2 (Link.endpoint_a l12, Link.endpoint_b l12);
  wait engine 6.;
  Alcotest.(check bool) "cannot enroll while manager unreachable" false
    (Ipcp.is_enrolled m2);
  Link.set_blackhole l01 false;
  wait engine 20.;
  Alcotest.(check bool) "enrolls once the path heals" true (Ipcp.is_enrolled m2);
  let addrs = List.map Ipcp.address [ m0; m1; m2 ] in
  check Alcotest.int "distinct addresses" 3 (List.length (List.sort_uniq compare addrs))

let test_custom_qos_cubes () =
  (* A DIF can ship its own QoS cubes; flows pick them up by id. *)
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 21 in
  let video =
    {
      Qos.id = 9;
      name = "video";
      reliable = false;
      in_order = true;
      priority = 3;
      avg_bandwidth = 4e6;
      max_delay = 0.1;
    }
  in
  let dif = Dif.create engine ~qos_cubes:(video :: Qos.standard_cubes) "studio" in
  let a = Dif.add_member dif ~name:"cam" () in
  let b = Dif.add_member dif ~name:"screen" () in
  let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a l, Link.endpoint_b l);
  Dif.run_until_converged dif ();
  let got = ref 0 in
  Ipcp.register_app b (Types.apn "display") ~on_flow:(fun flow ->
      check Alcotest.string "server side sees the cube" "video"
        flow.Ipcp.qos.Qos.name;
      flow.Ipcp.set_on_receive (fun _ -> incr got));
  Ipcp.register_app a (Types.apn "camera") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow a ~src:(Types.apn "camera") ~dst:(Types.apn "display") ~qos_id:9
    ~on_result:(function
      | Ok flow ->
        check Alcotest.string "client side too" "video" flow.Ipcp.qos.Qos.name;
        flow.Ipcp.send (Bytes.make 100 'v')
      | Error e -> Alcotest.fail e);
  wait engine 5.;
  check Alcotest.int "delivered" 1 !got

let test_policy_language_drives_dif () =
  (* A DIF built from a parsed declarative spec behaves accordingly:
     window=1 (stop and wait) still delivers everything. *)
  match Rina_core.Policy_lang.parse "[efcp]\nwindow = 1" with
  | Error e -> Alcotest.fail e
  | Ok policy -> (
    let net = Topo.line ~policy ~n:2 () in
    let sink = Workload.sink () in
    match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
    | Error e -> Alcotest.fail e
    | Ok (flow, _) ->
      for _ = 1 to 10 do
        flow.Ipcp.send (Bytes.make 200 's')
      done;
      wait net.Topo.engine 10.;
      check Alcotest.int "stop-and-wait delivers" 10 sink.Workload.count)

(* ---------- chaos: crash, dead-peer detection, EFCP abort ---------- *)

(* Tight detection timers so failure detection plays out in a few
   virtual seconds: keepalives every 0.25 s, a peer is dead after
   0.8 s of silence, stale LSAs age out after 3 s. *)
let chaos_policy =
  let p = Policy.default in
  {
    p with
    Policy.routing =
      {
        Policy.hello_interval = 0.2;
        dead_interval = 0.7;
        lsa_min_interval = 0.02;
        refresh_ticks = 2;
        keepalive_interval = 0.25;
        dead_peer_timeout = 0.8;
        lsa_max_age = 3.0;
        anti_entropy_interval = 0.;
      };
  }

let test_crash_restart_fresh_address () =
  let net = Topo.line ~policy:chaos_policy ~n:3 () in
  let engine = net.Topo.engine in
  let n0 = net.Topo.nodes.(0) and n1 = net.Topo.nodes.(1) in
  let old_addr = Ipcp.address n1 in
  check Alcotest.int "converged lsdb has all three" 3 (Ipcp.lsdb_size n0);
  Ipcp.crash n1;
  Alcotest.(check bool) "down after crash" false (Ipcp.is_up n1);
  (* silence > dead_peer_timeout: the survivors declare the relay dead
     and withdraw its LSA without any goodbye from it *)
  wait engine 2.0;
  Alcotest.(check bool) "LSA withdrawn at n0" true (Ipcp.lsdb_size n0 < 3);
  Alcotest.(check bool) "adjacency torn down at n0" true
    (not (List.mem_assoc old_addr (Ipcp.neighbors n0)));
  Ipcp.restart n1;
  (* re-enrollment on the next hello, reconvergence, and one aging
     window so any stale entry for the old incarnation expires *)
  wait engine 10.0;
  Alcotest.(check bool) "re-enrolled" true (Ipcp.is_enrolled n1);
  let fresh = Ipcp.address n1 in
  Alcotest.(check bool) "fresh nonzero address" true
    (fresh > 0 && fresh <> old_addr);
  check Alcotest.int "lsdb back to three live members" 3 (Ipcp.lsdb_size n0);
  Alcotest.(check bool) "no stale LSA for the old address" true
    (not
       (List.exists
          (fun (dst, _, _) -> dst = old_addr)
          (Ipcp.routing_table n0)));
  (* end-to-end proof of reconvergence: a flow across the restarted
     relay delivers *)
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    flow.Ipcp.send (Bytes.of_string "through the new incarnation");
    wait engine 5.;
    check Alcotest.int "delivered across restarted relay" 1
      sink.Workload.count

let test_dead_peer_fires_only_after_timeout () =
  (* Hello-based adjacency expiry is parked (dead_interval huge) so
     only the RIEP keepalive / dead-peer path can declare death. *)
  let policy =
    {
      chaos_policy with
      Policy.routing =
        {
          chaos_policy.Policy.routing with
          Policy.dead_interval = 1000.;
          keepalive_interval = 0.25;
          dead_peer_timeout = 2.0;
        };
    }
  in
  let net = Topo.line ~policy ~n:2 () in
  let engine = net.Topo.engine in
  let n0 = net.Topo.nodes.(0) in
  let link = net.Topo.links.(0) in
  let peer = Ipcp.address net.Topo.nodes.(1) in
  (* a silence shorter than the timeout must not kill the adjacency *)
  Link.set_blackhole link true;
  wait engine 1.0;
  Link.set_blackhole link false;
  wait engine 1.0;
  Alcotest.(check bool) "short silence: peer kept" true
    (List.mem_assoc peer (Ipcp.neighbors n0));
  (* permanent silence: still alive just before the timeout... *)
  Link.set_blackhole link true;
  wait engine 1.2;
  Alcotest.(check bool) "not yet declared before timeout" true
    (List.mem_assoc peer (Ipcp.neighbors n0));
  (* ...and declared dead (adjacency gone, LSA withdrawn) after it *)
  wait engine 2.0;
  Alcotest.(check bool) "declared dead after timeout" false
    (List.mem_assoc peer (Ipcp.neighbors n0));
  check Alcotest.int "peer LSA withdrawn" 1 (Ipcp.lsdb_size n0)

let test_efcp_abort_surfaces_to_owner () =
  (* Park every routing-level detector so EFCP retransmission
     exhaustion is the only thing that can kill the flow. *)
  let p = Policy.default in
  let policy =
    {
      p with
      Policy.efcp =
        { p.Policy.efcp with Policy.init_rto = 0.1; min_rto = 0.05; max_rtx = 3 };
      routing =
        {
          p.Policy.routing with
          Policy.dead_interval = 1000.;
          keepalive_interval = 0.;
          dead_peer_timeout = 1000.;
          lsa_max_age = 0.;
        };
    }
  in
  let net = Topo.line ~policy ~n:2 () in
  let engine = net.Topo.engine in
  let link = net.Topo.links.(0) in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    let err = ref None in
    flow.Ipcp.set_on_error (fun reason -> err := Some reason);
    flow.Ipcp.send (Bytes.of_string "gets through");
    wait engine 2.;
    check Alcotest.int "healthy delivery first" 1 sink.Workload.count;
    Alcotest.(check bool) "no error yet" true (!err = None);
    Link.set_blackhole link true;
    flow.Ipcp.send (Bytes.of_string "into the void");
    wait engine 10.;
    Alcotest.(check bool) "abort surfaced to the flow owner" true
      (!err <> None);
    Alcotest.(check bool) "flow_errors metric counted" true
      (Metrics.get (Ipcp.metrics net.Topo.nodes.(0)) "flow_errors" > 0)

(* ---------- RIB anti-entropy ---------- *)

(* A directory flood lost to a partition leaves the far node divergent
   forever unless something re-offers the state: with
   [anti_entropy_interval > 0] periodic peer syncs repair it (even
   through a corrupting channel after the heal); with it disabled, the
   divergence is permanent — the control run. *)
let run_partitioned_registration ~ae =
  let p = Policy.default in
  let policy =
    { p with Policy.routing = { p.Policy.routing with Policy.anti_entropy_interval = ae } }
  in
  let net = Topo.line ~seed:11 ~policy ~n:3 () in
  let engine = net.Topo.engine in
  let far_link = net.Topo.links.(1) in
  (* Silent partition of b–c: short of dead_peer_timeout, so the
     adjacency survives and nothing re-enrolls (re-enrollment would sync
     the RIB on its own and mask what we are testing). *)
  Link.set_blackhole far_link true;
  Ipcp.register_app net.Topo.nodes.(0) (Types.apn "late") ~on_flow:(fun _ -> ());
  wait engine 2.0;
  let path = "/dir/" ^ Types.apn_to_string (Types.apn "late") in
  let far_rib = Ipcp.rib net.Topo.nodes.(2) in
  let divergent = not (Rina_core.Rib.exists far_rib path) in
  (* Heal the partition but leave the channel hostile: 30% of frames
     are corrupted, so one-shot repairs can be damaged in flight and
     only a periodic mechanism is guaranteed to get through. *)
  Link.set_blackhole far_link false;
  Link.set_mangle far_link (Rina_sim.Mangle.make ~corrupt:0.3 ());
  wait engine 20.0;
  (divergent, Rina_core.Rib.exists far_rib path)

let test_rib_anti_entropy_reconverges () =
  let divergent, converged = run_partitioned_registration ~ae:2.0 in
  Alcotest.(check bool) "partition caused divergence" true divergent;
  Alcotest.(check bool) "anti-entropy repaired the far RIB" true converged;
  let divergent0, converged0 = run_partitioned_registration ~ae:0. in
  Alcotest.(check bool) "control run also diverged" true divergent0;
  Alcotest.(check bool) "without anti-entropy it stays divergent" false
    converged0

let () =
  Alcotest.run "integration"
    [
      ( "enrollment",
        [
          Alcotest.test_case "two members" `Quick test_two_member_enrollment;
          Alcotest.test_case "unique addresses (star)" `Quick test_unique_addresses_star;
          Alcotest.test_case "auth denied" `Quick test_auth_enrollment_denied;
          Alcotest.test_case "auth accepted" `Quick test_auth_enrollment_accepted;
        ] );
      ( "flows",
        [
          Alcotest.test_case "bidirectional transfer" `Quick test_flow_bidirectional_transfer;
          Alcotest.test_case "large sdu fragmentation" `Quick test_large_sdu_fragmentation;
          Alcotest.test_case "unknown name" `Quick test_unknown_name_fails;
          Alcotest.test_case "acl denies" `Quick test_acl_denies_flow;
          Alcotest.test_case "close frees state" `Quick test_flow_close_frees_state;
          Alcotest.test_case "admission busy retry" `Quick test_admission_busy_retry;
          Alcotest.test_case "unregister withdraws" `Quick test_directory_updates_after_unregister;
        ] );
      ( "relaying",
        [
          Alcotest.test_case "line of four" `Quick test_relay_line_of_four;
          Alcotest.test_case "mgmt relayed" `Quick test_mgmt_pdus_are_relayed;
        ] );
      ( "failover",
        [
          Alcotest.test_case "multihoming local" `Quick test_multihoming_local_failover;
          Alcotest.test_case "traced failover window" `Quick
            test_traced_failover_interruption_window;
          Alcotest.test_case "ring reroute" `Quick test_ring_reroutes_after_link_failure;
        ] );
      ("recursion", [ Alcotest.test_case "stacked transfer" `Quick test_stacked_dif_transfer ]);
      ( "chaos",
        [
          Alcotest.test_case "crash then restart: fresh address" `Quick
            test_crash_restart_fresh_address;
          Alcotest.test_case "dead-peer timeout respected" `Quick
            test_dead_peer_fires_only_after_timeout;
          Alcotest.test_case "efcp abort surfaces" `Quick
            test_efcp_abort_surfaces_to_owner;
          Alcotest.test_case "rib anti-entropy reconverges" `Quick
            test_rib_anti_entropy_reconverges;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "dif helpers and trace" `Quick test_dif_helpers_and_trace;
          Alcotest.test_case "unknown qos fallback" `Quick
            test_unknown_qos_falls_back_to_best_effort;
          Alcotest.test_case "leave withdraws everything" `Quick
            test_member_leave_withdraws_everything;
          Alcotest.test_case "leave then re-enroll" `Quick test_leave_then_reenroll;
          Alcotest.test_case "grant timeout then retry" `Quick test_grant_timeout_then_retry;
        ] );
      ( "security",
        [
          Alcotest.test_case "injection dropped" `Quick test_unauthenticated_injection_dropped;
          Alcotest.test_case "declarative policy drives DIF" `Quick test_policy_language_drives_dif;
          Alcotest.test_case "custom qos cubes" `Quick test_custom_qos_cubes;
        ] );
    ]
