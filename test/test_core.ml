(* Unit and property tests for rina_core's passive modules: naming,
   PDU/RIEP codecs, SDU protection, RIB, QoS, policies, delimiting,
   routing computation, shim framing. *)

module Types = Rina_core.Types
module Pdu = Rina_core.Pdu
module Riep = Rina_core.Riep
module Rib = Rina_core.Rib
module Qos = Rina_core.Qos
module Policy = Rina_core.Policy
module Policy_lang = Rina_core.Policy_lang
module Delimiting = Rina_core.Delimiting
module Routing = Rina_core.Routing
module Shim = Rina_core.Shim
module Sdu = Rina_core.Sdu_protection

let check = Alcotest.check

(* ---------- Types ---------- *)

let test_apn_roundtrip () =
  let a = Types.apn ~instance:"7" "web-server" in
  check Alcotest.string "to_string" "web-server/7" (Types.apn_to_string a);
  Alcotest.(check bool) "roundtrip" true
    (Types.apn_equal a (Types.apn_of_string "web-server/7"));
  let d = Types.apn_of_string "plain" in
  check Alcotest.string "default instance" "1" d.Types.ap_instance;
  Alcotest.(check bool) "compare orders by name" true
    (Types.apn_compare (Types.apn "a") (Types.apn "b") < 0)

(* ---------- Pdu ---------- *)

let test_pdu_roundtrip_all_types () =
  List.iter
    (fun pdu_type ->
      let p =
        Pdu.make ~pdu_type ~dst_addr:77 ~src_addr:13 ~dst_cep:4 ~src_cep:5 ~qos_id:2
          ~seq:9999 ~ack:55 ~window:31 ~ttl:9
          ~flags:(Pdu.flag_drf lor Pdu.flag_fin)
          (Bytes.of_string "payload bytes")
      in
      match Pdu.decode (Pdu.encode p) with
      | Ok q ->
        Alcotest.(check bool) "equal" true (p = q);
        Alcotest.(check bool) "drf" true (Pdu.has_flag q Pdu.flag_drf);
        Alcotest.(check bool) "fin" true (Pdu.has_flag q Pdu.flag_fin)
      | Error e -> Alcotest.fail e)
    [ Pdu.Dtp; Pdu.Ack; Pdu.Mgmt; Pdu.Hello ]

let test_pdu_header_size () =
  let p =
    Pdu.make ~pdu_type:Pdu.Dtp ~dst_addr:1 ~src_addr:2 (Bytes.create 100)
  in
  check Alcotest.int "encoded length" (Pdu.header_size + 100)
    (Bytes.length (Pdu.encode p))

let test_pdu_decode_garbage () =
  (match Pdu.decode (Bytes.of_string "nonsense") with
   | Ok _ -> Alcotest.fail "accepted garbage"
   | Error _ -> ());
  (* wrong version byte *)
  let p = Pdu.make ~pdu_type:Pdu.Dtp ~dst_addr:1 ~src_addr:2 Bytes.empty in
  let b = Pdu.encode p in
  Bytes.set b 0 '\x63';
  match Pdu.decode b with
  | Ok _ -> Alcotest.fail "accepted bad version"
  | Error _ -> ()

let prop_pdu_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (ty, (d, s, dc, sc), (q, sq, a, w), payload) ->
          Pdu.make
            ~pdu_type:(match ty with 0 -> Pdu.Dtp | 1 -> Pdu.Ack | 2 -> Pdu.Mgmt | _ -> Pdu.Hello)
            ~dst_addr:d ~src_addr:s ~dst_cep:dc ~src_cep:sc ~qos_id:q ~seq:sq ~ack:a
            ~window:w
            (Bytes.of_string payload))
        (tup4 (int_range 0 3)
           (tup4 (int_range 0 100000) (int_range 0 100000) (int_range 0 9999) (int_range 0 9999))
           (tup4 (int_range 0 65535) (int_range 0 1000000) (int_range 0 1000000) (int_range 0 65535))
           (string_size (int_range 0 200))))
  in
  QCheck.Test.make ~name:"pdu encode/decode roundtrip" ~count:300
    (QCheck.make gen)
    (fun p -> match Pdu.decode (Pdu.encode p) with Ok q -> p = q | Error _ -> false)

(* ---------- Sdu_protection ---------- *)

let test_crc32_known_vector () =
  (* The standard CRC-32 check value. *)
  check Alcotest.int "crc32(123456789)" 0xCBF43926
    (Sdu.crc32 (Bytes.of_string "123456789"))

let test_sdu_roundtrip_and_corruption () =
  let body = Bytes.of_string "some frame body" in
  let f = Sdu.protect body in
  check Alcotest.int "overhead" (Bytes.length body + Sdu.overhead) (Bytes.length f);
  (match Sdu.verify f with
   | Some b -> check Alcotest.bytes "roundtrip" body b
   | None -> Alcotest.fail "verify failed");
  (* Corrupt each of a few positions. *)
  List.iter
    (fun pos ->
      let g = Bytes.copy f in
      Bytes.set g pos (Char.chr (Char.code (Bytes.get g pos) lxor 0x40));
      match Sdu.verify g with
      | Some _ -> Alcotest.fail "accepted corrupt frame"
      | None -> ())
    [ 0; 5; Bytes.length f - 1 ];
  (* Too short. *)
  match Sdu.verify (Bytes.of_string "ab") with
  | Some _ -> Alcotest.fail "accepted short frame"
  | None -> ()

(* ---------- Rib ---------- *)

let test_rib_crud () =
  let rib = Rib.create () in
  Alcotest.(check bool) "absent" false (Rib.exists rib "/a");
  Rib.write rib "/a" (Rib.V_int 1);
  check Alcotest.(option int) "read_int" (Some 1) (Rib.read_int rib "/a");
  check Alcotest.(option string) "read_str wrong type" None (Rib.read_str rib "/a");
  Rib.write rib "/a" (Rib.V_int 2);
  check Alcotest.(option int) "overwrite" (Some 2) (Rib.read_int rib "/a");
  Alcotest.(check bool) "delete" true (Rib.delete rib "/a");
  Alcotest.(check bool) "delete again" false (Rib.delete rib "/a");
  check Alcotest.int "size" 0 (Rib.size rib)

let test_rib_children () =
  let rib = Rib.create () in
  Rib.write rib "/dir/a" (Rib.V_int 1);
  Rib.write rib "/dir/b" (Rib.V_int 2);
  Rib.write rib "/dir/b/nested" (Rib.V_int 3);
  Rib.write rib "/other" (Rib.V_int 4);
  check Alcotest.(list string) "one level" [ "/dir/a"; "/dir/b" ] (Rib.children rib "/dir");
  check Alcotest.int "dump size" 4 (List.length (Rib.dump rib))

let test_rib_subscriptions () =
  let rib = Rib.create () in
  let events = ref [] in
  Rib.subscribe rib ~prefix:"/dir" (fun ev path _ ->
      let tag =
        match ev with Rib.Created -> "C" | Rib.Updated -> "U" | Rib.Deleted -> "D"
      in
      events := (tag ^ path) :: !events);
  Rib.write rib "/dir/x" (Rib.V_bool true);
  Rib.write rib "/dir/x" (Rib.V_bool false);
  ignore (Rib.delete rib "/dir/x");
  Rib.write rib "/elsewhere" (Rib.V_int 0);
  check Alcotest.(list string) "events in order" [ "C/dir/x"; "U/dir/x"; "D/dir/x" ]
    (List.rev !events)

let prop_rib_value_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun s -> Rib.V_str s) string;
          map (fun i -> Rib.V_int i) int;
          map (fun f -> Rib.V_float f) (float_bound_inclusive 1e9);
          map (fun b -> Rib.V_bool b) bool;
          map (fun s -> Rib.V_bytes (Bytes.of_string s)) string;
        ])
  in
  QCheck.Test.make ~name:"rib value codec roundtrip" ~count:300 (QCheck.make gen)
    (fun v ->
      let w = Rina_util.Codec.Writer.create () in
      Rib.encode_value w v;
      let r = Rina_util.Codec.Reader.create (Rina_util.Codec.Writer.contents w) in
      let out = Rib.decode_value r in
      Rib.value_equal v out)

(* ---------- Riep ---------- *)

let test_riep_roundtrip_all_opcodes () =
  List.iter
    (fun opcode ->
      let m =
        Riep.make ~opcode ~obj_class:"flow" ~obj_name:"/x/y"
          ~obj_value:(Rib.V_str "v") ~invoke_id:42 ~result:3 ~result_reason:"why" ()
      in
      match Riep.decode (Riep.encode m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    Riep.
      [
        M_connect; M_connect_r; M_release; M_create; M_create_r; M_delete; M_delete_r;
        M_read; M_read_r; M_write; M_start; M_stop;
      ]

let test_riep_response_mapping () =
  Alcotest.(check bool) "create->create_r" true
    (Riep.response_opcode Riep.M_create = Some Riep.M_create_r);
  Alcotest.(check bool) "write has none" true (Riep.response_opcode Riep.M_write = None);
  Alcotest.(check bool) "create_r is response" true
    (Riep.is_response (Riep.make ~opcode:Riep.M_create_r ()));
  Alcotest.(check bool) "write not response" false
    (Riep.is_response (Riep.make ~opcode:Riep.M_write ()))

(* ---------- Qos ---------- *)

let test_qos_cubes () =
  check Alcotest.int "4 standard cubes" 4 (List.length Qos.standard_cubes);
  (match Qos.find Qos.standard_cubes 1 with
   | Some c -> Alcotest.(check bool) "reliable cube ordered" true c.Qos.in_order
   | None -> Alcotest.fail "cube 1 missing");
  Alcotest.(check bool) "unknown id" true (Qos.find Qos.standard_cubes 99 = None);
  List.iter
    (fun c ->
      let w = Rina_util.Codec.Writer.create () in
      Qos.encode w c;
      let r = Rina_util.Codec.Reader.create (Rina_util.Codec.Writer.contents w) in
      Alcotest.(check bool) "qos codec roundtrip" true (Qos.decode r = c))
    Qos.standard_cubes

(* ---------- Policy / Policy_lang ---------- *)

let test_policy_lang_empty_is_default () =
  match Policy_lang.parse "" with
  | Ok p -> Alcotest.(check bool) "default" true (p = Policy.default)
  | Error e -> Alcotest.fail e

let test_policy_lang_keys_apply () =
  let spec =
    "[efcp]\n\
     window = 8\n\
     mtu = 500\n\
     rtx = gbn\n\
     cc = off\n\
     ack_delay = 0.5\n\
     [scheduler]\n\
     kind = drr\n\
     quantum = 900\n\
     [routing]\n\
     hello_interval = 2.5\n\
     refresh_ticks = 3\n\
     [auth]\n\
     kind = password\n\
     secret = hunter2\n\
     [dif]\n\
     max_ttl = 7\n"
  in
  match Policy_lang.parse spec with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check Alcotest.int "window" 8 p.Policy.efcp.Policy.window;
    check Alcotest.int "mtu" 500 p.Policy.efcp.Policy.mtu;
    Alcotest.(check bool) "gbn" true (p.Policy.efcp.Policy.rtx_strategy = Policy.Go_back_n);
    Alcotest.(check bool) "cc off" false p.Policy.efcp.Policy.congestion_control;
    check (Alcotest.float 1e-9) "ack_delay" 0.5 p.Policy.efcp.Policy.ack_delay;
    Alcotest.(check bool) "drr" true (p.Policy.scheduler = Policy.Drr 900);
    check (Alcotest.float 1e-9) "hello" 2.5 p.Policy.routing.Policy.hello_interval;
    check Alcotest.int "refresh" 3 p.Policy.routing.Policy.refresh_ticks;
    Alcotest.(check bool) "auth" true (p.Policy.auth = Policy.Auth_password "hunter2");
    check Alcotest.int "ttl" 7 p.Policy.max_ttl

let expect_error spec =
  match Policy_lang.parse spec with
  | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ spec)
  | Error e -> Alcotest.(check bool) "mentions a line" true (String.length e > 0)

let test_policy_lang_errors () =
  expect_error "window = 5";  (* key outside section *)
  expect_error "[bogus]\n";
  expect_error "[efcp]\nwindow = minus-three";
  expect_error "[efcp]\nwindow = 0";
  expect_error "[efcp]\nrtx = sometimes";
  expect_error "[efcp]\nnot_a_key = 1";
  expect_error "[scheduler]\nkind = lottery";
  expect_error "[auth]\nkind = password";  (* missing secret *)
  expect_error "[efcp]\njust some words"

let test_policy_lang_roundtrip () =
  List.iter
    (fun spec ->
      match Policy_lang.parse spec with
      | Error e -> Alcotest.fail e
      | Ok p -> (
        match Policy_lang.parse (Policy_lang.to_string p) with
        | Ok p' -> Alcotest.(check bool) "to_string roundtrips" true (p = p')
        | Error e -> Alcotest.fail ("reparse: " ^ e)))
    [
      "";
      "[efcp]\nwindow = 1";
      "[scheduler]\nkind = priority";
      "[scheduler]\nkind = drr\nquantum = 512";
      "[auth]\nkind = password\nsecret = p";
      "[efcp]\nrtx = none\ncc = off";
    ]

let test_policy_lang_comments_and_blanks () =
  match Policy_lang.parse "# a comment\n\n[efcp]\nwindow = 3 # inline\n" with
  | Ok p -> check Alcotest.int "window" 3 p.Policy.efcp.Policy.window
  | Error e -> Alcotest.fail e

let test_efcp_for_qos () =
  let p = Policy.default in
  Alcotest.(check bool) "reliable keeps strategy" true
    ((Policy.efcp_for_qos p Qos.reliable).Policy.rtx_strategy = Policy.Selective_repeat);
  Alcotest.(check bool) "best effort gets no_rtx" true
    ((Policy.efcp_for_qos p Qos.best_effort).Policy.rtx_strategy = Policy.No_rtx)

(* ---------- Delimiting ---------- *)

let test_delimiting_basic () =
  let sdu = Bytes.of_string (String.init 2500 (fun i -> Char.chr (i mod 256))) in
  let frags = Delimiting.fragment ~mtu:1000 sdu in
  check Alcotest.int "3 fragments" 3 (List.length frags);
  List.iter
    (fun f ->
      Alcotest.(check bool) "within mtu+overhead" true
        (Bytes.length f <= 1000 + Delimiting.overhead))
    frags;
  let r = Delimiting.create_reassembler () in
  let out = List.filter_map (Delimiting.push r) frags in
  match out with
  | [ whole ] -> check Alcotest.bytes "reassembled" sdu whole
  | _ -> Alcotest.fail "expected one SDU"

let test_delimiting_empty_sdu () =
  let frags = Delimiting.fragment ~mtu:100 Bytes.empty in
  check Alcotest.int "one empty fragment" 1 (List.length frags);
  let r = Delimiting.create_reassembler () in
  match List.filter_map (Delimiting.push r) frags with
  | [ whole ] -> check Alcotest.int "empty" 0 (Bytes.length whole)
  | _ -> Alcotest.fail "expected one SDU"

let test_delimiting_discard_on_new_first () =
  let r = Delimiting.create_reassembler () in
  let frags_a = Delimiting.fragment ~mtu:4 (Bytes.of_string "aaaaaaaa") in
  let frags_b = Delimiting.fragment ~mtu:4 (Bytes.of_string "bbbb") in
  (* Deliver only the first fragment of A, then all of B. *)
  (match frags_a with
   | first :: _ -> ignore (Delimiting.push r first)
   | [] -> Alcotest.fail "no fragments");
  let out = List.filter_map (Delimiting.push r) frags_b in
  check Alcotest.int "discarded count" 1 (Delimiting.discarded r);
  match out with
  | [ b ] -> check Alcotest.bytes "B survives" (Bytes.of_string "bbbb") b
  | _ -> Alcotest.fail "expected B"

let test_delimiting_middle_without_first_ignored () =
  let r = Delimiting.create_reassembler () in
  match Delimiting.fragment ~mtu:2 (Bytes.of_string "abcdef") with
  | _ :: middle :: _ ->
    Alcotest.(check bool) "middle alone yields nothing" true
      (Delimiting.push r middle = None)
  | _ -> Alcotest.fail "expected >2 fragments"

let prop_delimiting_roundtrip =
  QCheck.Test.make ~name:"delimit/reassemble roundtrip" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 5000)) (int_range 1 1500))
    (fun (s, mtu) ->
      let sdu = Bytes.of_string s in
      let r = Delimiting.create_reassembler () in
      match List.filter_map (Delimiting.push r) (Delimiting.fragment ~mtu sdu) with
      | [ whole ] -> Bytes.equal whole sdu
      | _ -> false)

(* ---------- Routing ---------- *)

let lsa origin seq neighbors = { Routing.Lsa.origin; seq; neighbors }

let test_routing_install_versions () =
  let db = Routing.create () in
  Alcotest.(check bool) "new" true (Routing.install db (lsa 1 1 [ (2, 1.) ]));
  Alcotest.(check bool) "same seq rejected" false (Routing.install db (lsa 1 1 []));
  Alcotest.(check bool) "older rejected" false (Routing.install db (lsa 1 0 []));
  Alcotest.(check bool) "newer accepted" true (Routing.install db (lsa 1 2 []));
  check Alcotest.(list int) "origins" [ 1 ] (Routing.origins db);
  Alcotest.(check bool) "withdraw" true (Routing.withdraw db 1);
  Alcotest.(check bool) "withdraw absent" false (Routing.withdraw db 1)

let line_db n =
  let db = Routing.create () in
  for i = 1 to n do
    let nbrs =
      List.filter_map
        (fun j -> if j >= 1 && j <= n then Some (j, 1.0) else None)
        [ i - 1; i + 1 ]
    in
    ignore (Routing.install db (lsa i 1 nbrs))
  done;
  db

let test_routing_spf_line () =
  let db = line_db 5 in
  let nh = Routing.spf db ~source:1 in
  check Alcotest.int "4 destinations" 4 (Hashtbl.length nh);
  List.iter
    (fun dst ->
      match Hashtbl.find_opt nh dst with
      | Some (hop, cost) ->
        check Alcotest.int "next hop is 2" 2 hop;
        check (Alcotest.float 1e-9) "cost is hops" (float_of_int (dst - 1)) cost
      | None -> Alcotest.fail "unreachable")
    [ 2; 3; 4; 5 ]

let test_routing_spf_two_way_check () =
  let db = Routing.create () in
  (* 1 claims 2 as neighbour but 2 does not reciprocate. *)
  ignore (Routing.install db (lsa 1 1 [ (2, 1.) ]));
  ignore (Routing.install db (lsa 2 1 []));
  let nh = Routing.spf db ~source:1 in
  check Alcotest.int "one-way edge unusable" 0 (Hashtbl.length nh)

let test_routing_spf_prefers_cheap_path () =
  let db = Routing.create () in
  (* 1-2-4 costs 1+1; 1-3-4 costs 5+1. *)
  ignore (Routing.install db (lsa 1 1 [ (2, 1.); (3, 5.) ]));
  ignore (Routing.install db (lsa 2 1 [ (1, 1.); (4, 1.) ]));
  ignore (Routing.install db (lsa 3 1 [ (1, 5.); (4, 1.) ]));
  ignore (Routing.install db (lsa 4 1 [ (2, 1.); (3, 1.) ]));
  let nh = Routing.spf db ~source:1 in
  (match Hashtbl.find_opt nh 4 with
   | Some (hop, cost) ->
     check Alcotest.int "via 2" 2 hop;
     check (Alcotest.float 1e-9) "cost 2" 2. cost
   | None -> Alcotest.fail "4 unreachable");
  (* source absent from results *)
  Alcotest.(check bool) "no self entry" true (Hashtbl.find_opt nh 1 = None)

let test_routing_spf_disconnected () =
  let db = Routing.create () in
  ignore (Routing.install db (lsa 1 1 [ (2, 1.) ]));
  ignore (Routing.install db (lsa 2 1 [ (1, 1.) ]));
  ignore (Routing.install db (lsa 8 1 [ (9, 1.) ]));
  ignore (Routing.install db (lsa 9 1 [ (8, 1.) ]));
  let nh = Routing.spf db ~source:1 in
  Alcotest.(check bool) "island unreachable" true (Hashtbl.find_opt nh 8 = None)

let test_routing_lsa_codec () =
  let l = lsa 42 17 [ (1, 1.5); (2, 2.5); (100, 0.25) ] in
  match Routing.Lsa.decode (Routing.Lsa.encode l) with
  | Ok l' -> Alcotest.(check bool) "roundtrip" true (l = l')
  | Error e -> Alcotest.fail e

let prop_spf_paths_loop_free =
  (* On any connected random symmetric graph, hop-by-hop forwarding
     along each node's SPF next hops must reach every destination
     without ever looping. *)
  QCheck.Test.make ~name:"spf forwarding is loop-free and complete" ~count:60
    QCheck.(pair (int_range 3 14) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rina_util.Prng.create seed in
      (* Spanning chain + random extra symmetric edges. *)
      let adj = Array.make (n + 1) [] in
      let add a b =
        if a <> b && not (List.mem_assoc b adj.(a)) then begin
          adj.(a) <- (b, 1.0) :: adj.(a);
          adj.(b) <- (a, 1.0) :: adj.(b)
        end
      in
      for i = 1 to n - 1 do
        add i (i + 1)
      done;
      for _ = 1 to n do
        add (1 + Rina_util.Prng.int rng n) (1 + Rina_util.Prng.int rng n)
      done;
      let db = Routing.create () in
      for i = 1 to n do
        ignore (Routing.install db (lsa i 1 adj.(i)))
      done;
      let tables = Array.init (n + 1) (fun i -> if i = 0 then Hashtbl.create 1 else Routing.spf db ~source:i) in
      let ok = ref true in
      for src = 1 to n do
        for dst = 1 to n do
          if src <> dst then begin
            let rec walk node hops =
              if hops > n then ok := false
              else if node <> dst then
                match Hashtbl.find_opt tables.(node) dst with
                | Some (next, _) -> walk next (hops + 1)
                | None -> ok := false
            in
            walk src 0
          end
        done
      done;
      !ok)

let prop_policy_lang_roundtrip_random =
  (* to_string/parse round-trips any policy assembled from the
     language's value space. *)
  let gen =
    QCheck.Gen.(
      map
        (fun ((w, mtu, rtx_i, cc), (rto, ack), (sched_i, q), (hello, refresh, ttl, auth)) ->
          let rtx =
            match rtx_i with
            | 0 -> Policy.Selective_repeat
            | 1 -> Policy.Go_back_n
            | _ -> Policy.No_rtx
          in
          let scheduler =
            match sched_i with
            | 0 -> Policy.Fifo
            | 1 -> Policy.Priority_queueing
            | _ -> Policy.Drr q
          in
          {
            Policy.efcp =
              {
                Policy.default_efcp with
                Policy.window = w;
                mtu;
                init_rto = rto;
                ack_delay = ack;
                rtx_strategy = rtx;
                congestion_control = cc;
              };
            scheduler;
            routing =
              {
                Policy.default_routing with
                Policy.hello_interval = hello;
                refresh_ticks = refresh;
              };
            enrollment = Policy.default_enrollment;
            auth = (if auth then Policy.Auth_password "pw" else Policy.Auth_none);
            acl = Policy.Allow_all;
            max_ttl = ttl;
            telemetry = Policy.default_telemetry;
            congestion = Policy.default_congestion;
            shard = Policy.default_shard;
            multipath = Policy.default_multipath;
          })
        (tup4
           (tup4 (int_range 1 512) (int_range 16 9000) (int_range 0 2) bool)
           (tup2 (float_range 0.01 4.) (float_range 0. 1.))
           (tup2 (int_range 0 2) (int_range 64 4096))
           (tup4 (float_range 0.1 10.) (int_range 1 50) (int_range 1 255) bool)))
  in
  QCheck.Test.make ~name:"policy_lang to_string/parse roundtrip (random)" ~count:150
    (QCheck.make gen)
    (fun p ->
      match Policy_lang.parse (Policy_lang.to_string p) with
      | Ok p' ->
        (* Float formatting via %g is lossy only beyond 6 significant
           digits; compare fields accordingly. *)
        let close a b = Float.abs (a -. b) <= 1e-5 *. Float.max 1. (Float.abs a) in
        p'.Policy.efcp.Policy.window = p.Policy.efcp.Policy.window
        && p'.Policy.efcp.Policy.mtu = p.Policy.efcp.Policy.mtu
        && p'.Policy.efcp.Policy.rtx_strategy = p.Policy.efcp.Policy.rtx_strategy
        && p'.Policy.efcp.Policy.congestion_control
           = p.Policy.efcp.Policy.congestion_control
        && close p'.Policy.efcp.Policy.init_rto p.Policy.efcp.Policy.init_rto
        && close p'.Policy.efcp.Policy.ack_delay p.Policy.efcp.Policy.ack_delay
        && p'.Policy.scheduler = p.Policy.scheduler
        && close p'.Policy.routing.Policy.hello_interval
             p.Policy.routing.Policy.hello_interval
        && p'.Policy.routing.Policy.refresh_ticks = p.Policy.routing.Policy.refresh_ticks
        && p'.Policy.auth = p.Policy.auth
        && p'.Policy.max_ttl = p.Policy.max_ttl
      | Error _ -> false)

(* ---------- Shim ---------- *)

let test_shim_tag_filtering () =
  let a, b = Rina_sim.Chan.pair () in
  let wa = Shim.wrap ~dif:"net-1" a in
  let wb = Shim.wrap ~dif:"net-1" b in
  let foreign = Shim.wrap ~dif:"net-2" b in
  let got = ref [] and foreign_got = ref [] in
  wb.Rina_sim.Chan.set_receiver (fun f -> got := Bytes.to_string f :: !got);
  wa.Rina_sim.Chan.send (Bytes.of_string "hello");
  check Alcotest.(list string) "same dif passes" [ "hello" ] !got;
  (* A frame from another DIF on the same wire is filtered. *)
  foreign.Rina_sim.Chan.set_receiver (fun f -> foreign_got := Bytes.to_string f :: !foreign_got);
  wa.Rina_sim.Chan.send (Bytes.of_string "ssh");
  check Alcotest.(list string) "foreign filtered" [] !foreign_got;
  check Alcotest.int "counted" 1
    (Rina_util.Metrics.get foreign.Rina_sim.Chan.stats "foreign_frames");
  Alcotest.(check bool) "tags differ" true
    (Shim.tag_of_dif "net-1" <> Shim.tag_of_dif "net-2")

let () =
  Alcotest.run "rina_core"
    [
      ("types", [ Alcotest.test_case "apn" `Quick test_apn_roundtrip ]);
      ( "pdu",
        [
          Alcotest.test_case "roundtrip all types" `Quick test_pdu_roundtrip_all_types;
          Alcotest.test_case "header size" `Quick test_pdu_header_size;
          Alcotest.test_case "decode garbage" `Quick test_pdu_decode_garbage;
          QCheck_alcotest.to_alcotest prop_pdu_roundtrip;
        ] );
      ( "sdu_protection",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "roundtrip + corruption" `Quick test_sdu_roundtrip_and_corruption;
        ] );
      ( "rib",
        [
          Alcotest.test_case "crud" `Quick test_rib_crud;
          Alcotest.test_case "children" `Quick test_rib_children;
          Alcotest.test_case "subscriptions" `Quick test_rib_subscriptions;
          QCheck_alcotest.to_alcotest prop_rib_value_roundtrip;
        ] );
      ( "riep",
        [
          Alcotest.test_case "roundtrip opcodes" `Quick test_riep_roundtrip_all_opcodes;
          Alcotest.test_case "response mapping" `Quick test_riep_response_mapping;
        ] );
      ("qos", [ Alcotest.test_case "cubes" `Quick test_qos_cubes ]);
      ( "policy",
        [
          Alcotest.test_case "empty spec is default" `Quick test_policy_lang_empty_is_default;
          Alcotest.test_case "keys apply" `Quick test_policy_lang_keys_apply;
          Alcotest.test_case "errors" `Quick test_policy_lang_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_policy_lang_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_policy_lang_comments_and_blanks;
          Alcotest.test_case "efcp_for_qos" `Quick test_efcp_for_qos;
          QCheck_alcotest.to_alcotest prop_policy_lang_roundtrip_random;
        ] );
      ( "delimiting",
        [
          Alcotest.test_case "basic" `Quick test_delimiting_basic;
          Alcotest.test_case "empty sdu" `Quick test_delimiting_empty_sdu;
          Alcotest.test_case "discard on new first" `Quick test_delimiting_discard_on_new_first;
          Alcotest.test_case "middle without first" `Quick test_delimiting_middle_without_first_ignored;
          QCheck_alcotest.to_alcotest prop_delimiting_roundtrip;
        ] );
      ( "routing",
        [
          Alcotest.test_case "install versions" `Quick test_routing_install_versions;
          Alcotest.test_case "spf line" `Quick test_routing_spf_line;
          Alcotest.test_case "two-way check" `Quick test_routing_spf_two_way_check;
          Alcotest.test_case "prefers cheap path" `Quick test_routing_spf_prefers_cheap_path;
          Alcotest.test_case "disconnected" `Quick test_routing_spf_disconnected;
          Alcotest.test_case "lsa codec" `Quick test_routing_lsa_codec;
          QCheck_alcotest.to_alcotest prop_spf_paths_loop_free;
        ] );
      ("shim", [ Alcotest.test_case "tag filtering" `Quick test_shim_tag_filtering ]);
    ]
