(* Tests for the experiment-harness library (rina_exp): workload
   stamping/accounting and the topology builders the benchmarks rely
   on. *)

module Engine = Rina_sim.Engine
module Topo = Rina_exp.Topo
module Workload = Rina_exp.Workload
module Scenario = Rina_exp.Scenario
module Ipcp = Rina_core.Ipcp

let check = Alcotest.check

(* ---------- Workload ---------- *)

let test_stamp_roundtrip () =
  let sdu = Workload.stamp ~now:12.5 ~seq:42 ~size:100 in
  check Alcotest.int "padded to size" 100 (Bytes.length sdu);
  (match Workload.read_stamp sdu with
   | Some (t, seq) ->
     check (Alcotest.float 1e-9) "time" 12.5 t;
     check Alcotest.int "seq" 42 seq
   | None -> Alcotest.fail "stamp unreadable");
  (* Minimum size enforced. *)
  check Alcotest.int "minimum 16" 16 (Bytes.length (Workload.stamp ~now:0. ~seq:0 ~size:1));
  (* Foreign bytes are not mistaken for stamps. *)
  Alcotest.(check bool) "garbage rejected" true
    (Workload.read_stamp (Bytes.make 40 'z') = None)

let test_sink_accounting () =
  let s = Workload.sink () in
  Workload.on_sdu s ~now:1.0 (Workload.stamp ~now:0.9 ~seq:0 ~size:500);
  Workload.on_sdu s ~now:2.0 (Workload.stamp ~now:1.8 ~seq:3 ~size:500);
  check Alcotest.int "count" 2 s.Workload.count;
  check Alcotest.int "bytes" 1000 s.Workload.bytes;
  check Alcotest.int "max seq" 3 s.Workload.seen_max_seq;
  check (Alcotest.float 1e-9) "last arrival" 2.0 s.Workload.last_arrival;
  check (Alcotest.float 1e-6) "goodput over 1s window" 8000.
    (Workload.goodput s ~t0:1.0 ~t1:2.0);
  check (Alcotest.float 1e-9) "latency median" 0.15
    (Rina_util.Stats.median s.Workload.received)

let test_cbr_rate () =
  let engine = Engine.create () in
  let sent = ref 0 in
  (* 1 Mb/s of 1000-byte SDUs = 125 SDUs/s; over 2 s expect ~250. *)
  Workload.cbr engine ~send:(fun _ -> incr sent) ~rate:1_000_000. ~size:1000
    ~until:2.0 ();
  Engine.run ~until:3.0 engine;
  Alcotest.(check bool) "~250 sdus" true (!sent >= 248 && !sent <= 252)

let test_poisson_on_off_sends_something () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 33 in
  let sent = ref 0 in
  Workload.poisson_on_off engine rng ~send:(fun _ -> incr sent)
    ~peak_rate:1_000_000. ~mean_on:0.1 ~mean_off:0.1 ~size:500 ~until:5.0 ();
  Engine.run ~until:6.0 engine;
  (* ~50% duty cycle at 250 SDU/s peak over 5 s: several hundred. *)
  Alcotest.(check bool) "bursty but nonzero" true (!sent > 100 && !sent < 1250)

(* ---------- Topo ---------- *)

let test_line_converges () =
  let net = Topo.line ~n:5 () in
  check Alcotest.int "nodes" 5 (Array.length net.Topo.nodes);
  check Alcotest.int "links" 4 (Array.length net.Topo.links);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "enrolled" true (Ipcp.is_enrolled m);
      check Alcotest.int "full lsdb" 5 (Ipcp.lsdb_size m))
    net.Topo.nodes

let test_line_rejects_tiny () =
  Alcotest.check_raises "n=1" (Invalid_argument "Topo.line: need at least 2 nodes")
    (fun () -> ignore (Topo.line ~n:1 ()))

let test_star_converges () =
  let net = Topo.star ~leaves:5 () in
  check Alcotest.int "nodes" 6 (Array.length net.Topo.nodes);
  (* Hub sees all leaves as neighbours. *)
  check Alcotest.int "hub degree" 5 (List.length (Ipcp.neighbors net.Topo.nodes.(0)))

let test_random_graph_connected () =
  let net = Topo.random_graph ~n:12 ~degree:3 () in
  Array.iter
    (fun m ->
      Alcotest.(check bool) "enrolled" true (Ipcp.is_enrolled m);
      (* Connected: everyone routes to everyone. *)
      check Alcotest.int "full routing table" 11 (List.length (Ipcp.routing_table m)))
    net.Topo.nodes

let test_ip_line_builds () =
  let net = Topo.ip_line ~routers:2 () in
  check Alcotest.int "hosts" 2 (Array.length net.Topo.hosts);
  check Alcotest.int "routers" 2 (Array.length net.Topo.routers);
  (* DV converged: each router knows every one of the 3 subnets. *)
  Array.iter
    (fun r ->
      Alcotest.(check bool) "table covers subnets" true (Tcpip.Node.table_size r >= 3))
    net.Topo.routers

(* ---------- Scenario ---------- *)

let test_scenario_open_flow_and_metrics () =
  let net = Topo.line ~n:3 () in
  let sink = Workload.sink () in
  (match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:0 ~sink () with
   | Error e -> Alcotest.fail e
   | Ok (flow, _) ->
     flow.Ipcp.send (Workload.stamp ~now:(Engine.now net.Topo.engine) ~seq:0 ~size:64);
     Topo.wait net.Topo.engine 2.;
     check Alcotest.int "sink saw it" 1 sink.Workload.count);
  Alcotest.(check bool) "summed metric nonzero" true (Scenario.sum_metric net "mgmt_tx" > 0);
  Alcotest.(check bool) "summed rmt metric nonzero" true
    (Scenario.sum_rmt_metric net "sent" > 0)

let test_random_plan_replays_identically () =
  let build () =
    let net = Topo.line ~seed:5 ~n:4 () in
    let rng = Rina_util.Prng.create 77 in
    Scenario.random_plan net ~rng ~horizon:30. ~faults:8 ()
  in
  let a = Rina_sim.Fault.events (build ()) in
  let b = Rina_sim.Fault.events (build ()) in
  check
    Alcotest.(list (pair (float 1e-9) string))
    "same seed, same topology: identical schedule" a b;
  Alcotest.(check bool) "eight faults compiled" true (List.length a >= 8);
  (* node 0 is the address allocator and protected by default *)
  List.iter
    (fun (_, tag) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s never crashes node 0" tag)
        false
        (String.length tag > 3
        && String.sub tag (String.length tag - 3) 3 = "-n0"))
    a

let test_straddling_links_on_line () =
  let net = Topo.line ~n:3 () in
  (match Scenario.straddling_links net ~group:[ 0 ] with
  | [ l ] -> Alcotest.(check bool) "cut {0}|{1,2}" true (l == net.Topo.links.(0))
  | ls -> Alcotest.failf "expected one straddling link, got %d" (List.length ls));
  (match Scenario.straddling_links net ~group:[ 0; 1 ] with
  | [ l ] -> Alcotest.(check bool) "cut {0,1}|{2}" true (l == net.Topo.links.(1))
  | ls -> Alcotest.failf "expected one straddling link, got %d" (List.length ls));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Scenario.straddling_links: node index out of range")
    (fun () -> ignore (Scenario.straddling_links net ~group:[ 9 ]))

(* ---------- Par ---------- *)

module Par = Rina_exp.Par
module Fault = Rina_sim.Fault

(* One self-contained chaos trial, the same shape the hotpath bench
   sweeps: seed-derived topology, two random faults armed, CBR traffic
   relayed over a 3-node line, summarised as a JSON line whose fields
   include metrics merged across the whole network.  Each invocation
   builds a private engine/PRNG/metrics, so it is safe to run from any
   domain. *)
let par_trial ~seed =
  let net = Topo.line ~seed ~n:3 () in
  let engine = net.Topo.engine in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:1 ~sink () with
  | Error e -> Printf.sprintf "{\"seed\": %d, \"error\": %S}" seed e
  | Ok (flow, _) ->
    let t0 = Engine.now engine in
    let rng = Rina_util.Prng.create (seed lxor 0x5DEECE66) in
    let plan = Scenario.random_plan net ~rng ~horizon:6.0 ~faults:2 () in
    Fault.arm plan engine;
    Workload.cbr engine ~send:flow.Ipcp.send ~rate:1_000_000. ~size:500
      ~until:(t0 +. 5.) ();
    Engine.run ~until:(t0 +. 7.) engine;
    Printf.sprintf
      "{\"seed\": %d, \"delivered\": %d, \"relayed\": %d, \"flow_errors\": %d, \
       \"faults\": %d}"
      seed sink.Workload.count
      (Scenario.sum_rmt_metric net "relayed")
      (Scenario.sum_metric net "flow_errors")
      (List.length (Fault.events plan))

let test_par_identical_to_sequential () =
  let seeds = [ 300; 301; 302 ] in
  let seq = Par.run_trials ~domains:1 ~seeds par_trial in
  let par = Par.run_trials ~domains:4 ~seeds par_trial in
  check Alcotest.(list string) "parallel byte-identical to sequential" seq par;
  (* The trials actually exercised the stack: traffic was delivered and
     every summary line carries the armed fault count. *)
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "trial ran to completion: %s" line)
        true
        (String.length line > 0 && String.sub line 0 9 = "{\"seed\": "))
    seq;
  let contains_error line =
    let needle = "\"error\"" in
    let n = String.length needle and l = String.length line in
    let rec scan i = i + n <= l && (String.sub line i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "no flow-allocation failures" false
    (List.exists contains_error seq)

(* One observability trial: a relayed CBR run with a 5%-sampled trace
   attached and the worker's per-shard telemetry registry tapping every
   event.  Returns the kept trace as one JSONL string.  The sampling
   hash, the engine clock and the workload are all seed-deterministic,
   so the string must be byte-identical no matter which domain ran the
   trial. *)
let sampled_trial seed =
  let net = Topo.line ~seed ~n:3 () in
  let engine = net.Topo.engine in
  let tr = Rina_sim.Trace.create engine in
  let tele =
    match Rina_util.Telemetry.current () with
    | Some t -> t
    | None -> Alcotest.fail "map_telemetry did not install a shard registry"
  in
  Rina_sim.Trace.attach ~sample_rate:0.05 ~telemetry:tele tr;
  let sink = Workload.sink () in
  (match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:1 ~sink () with
  | Error e -> Alcotest.fail e
  | Ok (flow, _) ->
    let t0 = Engine.now engine in
    Workload.cbr engine ~send:flow.Ipcp.send ~rate:400_000. ~size:400
      ~until:(t0 +. 2.) ();
    Engine.run ~until:(t0 +. 3.) engine);
  Rina_sim.Trace.close tr;
  String.concat "\n"
    (List.map Rina_util.Flight.event_to_json (Rina_sim.Trace.typed_events tr))

let test_sampled_telemetry_par_deterministic () =
  let items = [| 900; 901; 902; 903 |] in
  let run domains =
    let traces, tele = Par.map_telemetry ~domains sampled_trial items in
    (traces, tele)
  in
  let t1, tele1 = run 1 in
  let t4, tele4 = run 4 in
  check
    Alcotest.(array string)
    "sampled traces byte-identical, 1 vs 4 domains" t1 t4;
  check Alcotest.string "merged telemetry byte-identical, 1 vs 4 domains"
    (Rina_util.Telemetry.to_jsonl tele1)
    (Rina_util.Telemetry.to_jsonl tele4);
  (* The trials really traced something, and the exact tally kept
     counting events the 5% sampler shed from the trace. *)
  Array.iter
    (fun s ->
      Alcotest.(check bool) "sampled trace non-empty" true (String.length s > 0))
    t1;
  let kept =
    Array.fold_left
      (fun acc s ->
        String.fold_left (fun n c -> if c = '\n' then n + 1 else n) (acc + 1) s)
      0 t1
  in
  let tallied = Rina_util.Telemetry.counter tele1 "events" in
  Alcotest.(check bool)
    (Printf.sprintf "tally (%d) exceeds kept trace events (%d)" tallied kept)
    true
    (tallied > kept)

(* ---------- sharded engine: byte-identity under domains + races ---------- *)

module Obs = Rina_exp.Obs
module Sharded = Rina_sim.Sharded
module Qos = Rina_core.Qos
module Race = Rina_util.Race

(* One full sharded trial — enrollment and routing convergence over
   the shard seam, a flow across it, half a second of CBR — returning
   every observable artifact.  The 20 ms link delay keeps the
   conservative lookahead window wide (few epochs), so the race-armed
   variant stays fast. *)
let sharded_trial ~domains =
  let net = Topo.sharded_line ~seed:23 ~n:4 ~shards:2 ~delay:0.02 () in
  let obs = Obs.start_sharded net.Topo.sh in
  let converged = Topo.sharded_converged ~max_time:60. ~domains net in
  let sink = Workload.sink () in
  let flow_ok =
    match
      Scenario.open_flow_sharded net ~domains ~src:0 ~dst:3
        ~qos_id:Qos.reliable.Qos.id ~sink ()
    with
    | Ok (flow, _) ->
      let e0 = Sharded.engine net.Topo.sh 0 in
      Workload.cbr e0 ~send:flow.Ipcp.send ~rate:100_000. ~size:400
        ~until:(Engine.now e0 +. 0.5) ();
      Topo.sharded_wait ~domains net 1.0;
      true
    | Error _ -> false
  in
  let ev = Obs.sharded_events_jsonl obs in
  let st = Obs.sharded_stats_jsonl obs in
  Obs.stop_sharded obs;
  (converged, flow_ok, sink.Workload.count, ev, st)

let test_sharded_identical_and_race_free () =
  let c1, f1, n1, e1, s1 = sharded_trial ~domains:1 in
  Alcotest.(check bool) "sequential run converges" true c1;
  Alcotest.(check bool) "flow opens over the shard seam" true f1;
  Alcotest.(check bool) "sink saw traffic" true (n1 > 0);
  Race.arm ();
  let c2, f2, n2, e2, s2 = sharded_trial ~domains:2 in
  let races = Race.races () in
  Race.disarm ();
  List.iter
    (fun r -> Printf.eprintf "RACE at %s\n" r.Race.site)
    races;
  Alcotest.(check int) "zero data races" 0 (List.length races);
  Alcotest.(check bool) "parallel run converges" true c2;
  Alcotest.(check bool) "parallel flow opens" true f2;
  Alcotest.(check int) "same sdu count" n1 n2;
  Alcotest.(check bool) "flight trace byte-identical (1 vs 2 domains)" true
    (String.equal e1 e2);
  Alcotest.(check bool) "telemetry byte-identical (1 vs 2 domains)" true
    (String.equal s1 s2)

let () =
  Alcotest.run "rina_exp"
    [
      ( "workload",
        [
          Alcotest.test_case "stamp roundtrip" `Quick test_stamp_roundtrip;
          Alcotest.test_case "sink accounting" `Quick test_sink_accounting;
          Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
          Alcotest.test_case "poisson on/off" `Quick test_poisson_on_off_sends_something;
        ] );
      ( "topo",
        [
          Alcotest.test_case "line converges" `Quick test_line_converges;
          Alcotest.test_case "line rejects n=1" `Quick test_line_rejects_tiny;
          Alcotest.test_case "star converges" `Quick test_star_converges;
          Alcotest.test_case "random graph connected" `Quick test_random_graph_connected;
          Alcotest.test_case "ip line builds" `Quick test_ip_line_builds;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "open flow + metrics" `Quick test_scenario_open_flow_and_metrics;
          Alcotest.test_case "random plan replays" `Quick
            test_random_plan_replays_identically;
          Alcotest.test_case "straddling links" `Quick
            test_straddling_links_on_line;
        ] );
      ( "par",
        [
          Alcotest.test_case "parallel = sequential (faults armed)" `Quick
            test_par_identical_to_sequential;
          Alcotest.test_case "sampled traces + merged telemetry deterministic"
            `Quick test_sampled_telemetry_par_deterministic;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "byte-identical across domains, race-free" `Quick
            test_sharded_identical_and_race_free;
        ] );
    ]
