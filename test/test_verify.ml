(* Whole-topology static verification tests.

   Fixtures plant one defect each and assert the exact V-code fires;
   QCheck properties generate random recursive stacks — clean ones
   must verify silent, and four planted defect classes (unreachable
   name, address collision, enrollment cycle, zero-delay cross-shard
   edge) must always be flagged.  The domain-race sanitizer is tested
   both ways: an injected unsynchronized cross-domain write is caught,
   and the annotated Par sweep runs clean and byte-identical. *)

module Diag = Rina_check.Diag
module Verify = Rina_check.Verify
module Sanitizer = Rina_check.Sanitizer
module Lint = Rina_check.Lint
module Race = Rina_util.Race
module Policy = Rina_core.Policy
module Topo = Rina_exp.Topo
module Par = Rina_exp.Par

let check = Alcotest.check

(* ---------- model-building helpers ---------- *)

let mem ?(addr = 0) ?(apps = []) name =
  { Verify.m_name = name; m_address = addr; m_apps = apps }

let direct ?(delay = 0.002) ?(bit_rate = 10_000_000.) ?(queue = 64) a b =
  {
    Verify.adj_a = a;
    adj_b = b;
    att = Verify.Direct { delay; bit_rate; queue_frames = queue };
  }

let stacked lower via_a via_b a b =
  { Verify.adj_a = a; adj_b = b; att = Verify.Stacked { lower_dif = lower; via_a; via_b } }

let dif ?(policy = Policy.default) name members adjs =
  { Verify.d_name = name; d_policy = policy; d_members = members; d_adjacencies = adjs }

let model ?(intents = []) ?shards difs = { Verify.difs; intents; shards }

let intent d src app = { Verify.it_dif = d; it_src = src; it_dst_app = app }

let codes_of ?max_depth m =
  List.map (fun d -> d.Diag.code) (Verify.verify ?max_depth m).diags

let flags ?max_depth code m =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" code)
    true
    (List.mem code (codes_of ?max_depth m))

let silent m =
  check (Alcotest.list Alcotest.string) "no findings" [] (codes_of m)

let with_mtu p v =
  let e = p.Policy.efcp in
  { p with Policy.efcp = { e with Policy.mtu = v } }

let with_window p v =
  let e = p.Policy.efcp in
  { p with Policy.efcp = { e with Policy.window = v } }

(* A two-member lower DIF usable as a stacking base. *)
let wire ?policy name =
  dif ?policy name
    [ mem ~addr:1 (name ^ ".a"); mem ~addr:2 (name ^ ".b") ]
    [ direct (name ^ ".a") (name ^ ".b") ]

(* ---------- fixtures: one defect per test ---------- *)

let test_structural () =
  flags "V001" (model [ dif "d" [ mem ~addr:1 "a" ] [ direct "a" "ghost" ] ]);
  flags "V002"
    (model [ dif "d" [ mem ~addr:1 "a"; mem ~addr:2 "b" ]
               [ stacked "nowhere" "x" "y" "a" "b" ] ]);
  flags "V002"
    (model [ wire "w"; dif "d" [ mem ~addr:1 "a"; mem ~addr:2 "b" ]
               [ stacked "w" "w.a" "ghost" "a" "b" ] ]);
  flags "V003" (model [ wire "w"; wire "w" ]);
  flags "V003" (model [ dif "d" [ mem ~addr:1 "a"; mem ~addr:2 "a" ] [] ]);
  flags "V004" (model ~intents:[ intent "nowhere" "a" "app" ] [ wire "w" ]);
  flags "V004" (model ~intents:[ intent "w" "ghost" "app" ] [ wire "w" ])

let test_naming () =
  flags "V101" (model ~intents:[ intent "w" "w.a" "app" ] [ wire "w" ]);
  (* disconnected member: whole-DIF check and the intent-scoped one *)
  let disconnected =
    model
      ~intents:[ intent "d" "a" "app" ]
      [
        dif "d"
          [ mem ~addr:1 "a"; mem ~addr:2 "b"; mem ~addr:3 ~apps:[ "app" ] "island" ]
          [ direct "a" "b" ];
      ]
  in
  flags "V102" disconnected;
  flags "V104" disconnected;
  flags "V103"
    (model [ dif "d" [ mem ~addr:1 ~apps:[ "app" ] "a"; mem ~addr:2 ~apps:[ "app" ] "b" ]
               [ direct "a" "b" ] ]);
  (* lower endpoints exist but are not connected down there *)
  flags "V110"
    (model
       [
         dif "w" [ mem ~addr:1 "w.a"; mem ~addr:2 "w.b" ] [];
         dif "d" [ mem ~addr:1 "a"; mem ~addr:2 "b" ] [ stacked "w" "w.a" "w.b" "a" "b" ];
       ])

let test_addressing () =
  flags "V201"
    (model [ dif "d" [ mem ~addr:5 "a"; mem ~addr:5 "b" ] [ direct "a" "b" ] ]);
  flags "V202"
    (model [ dif "d" [ mem ~addr:(-1) "a"; mem ~addr:2 "b" ] [ direct "a" "b" ] ]);
  flags "V203"
    (model [ dif "d" [ mem ~addr:1 "a"; mem ~addr:0 "b" ] [ direct "a" "b" ] ]);
  flags "V211"
    (model [ dif "d" [ mem ~addr:1 "a"; mem ~addr:2 "b" ] [ stacked "d" "a" "b" "a" "b" ] ])

let test_depth () =
  (* d0 <- d1 <- ... <- d20: depth 21 over the default bound of 16 *)
  let chain =
    wire "d0"
    :: List.init 20 (fun i ->
           let name = Printf.sprintf "d%d" (i + 1)
           and lower = Printf.sprintf "d%d" i in
           dif name
             [ mem ~addr:1 (name ^ ".a"); mem ~addr:2 (name ^ ".b") ]
             [ stacked lower (lower ^ ".a") (lower ^ ".b") (name ^ ".a") (name ^ ".b") ])
  in
  let m = model chain in
  flags "V210" m;
  check (Alcotest.list Alcotest.string) "bound respected when raised" []
    (codes_of ~max_depth:32 m);
  check Alcotest.int "support depth measured" 21
    (Verify.verify ~max_depth:32 m).summary.support_depth

let test_feasibility () =
  let lower = wire "w" in
  let upper policy =
    dif ~policy "d"
      [ mem ~addr:1 "a"; mem ~addr:2 "b" ]
      [ stacked "w" "w.a" "w.b" "a" "b" ]
  in
  (* default 1400/1400: 2 fragments, silent *)
  silent (model [ lower; upper Policy.default ]);
  (* 3x the lower MTU: warning, not an error (window 64 admits it) *)
  flags "V220" (model [ lower; upper (with_mtu Policy.default (3 * 1400)) ]);
  (* one (N)-PDU needs more fragments than the whole lower window *)
  flags "V221" (model [ lower; upper (with_mtu Policy.default (65 * 1400)) ]);
  (* a full EFCP window overruns the link queue *)
  flags "V222"
    (model
       [
         dif
           ~policy:(with_window Policy.default 32)
           "d"
           [ mem ~addr:1 "a"; mem ~addr:2 "b" ]
           [ direct ~queue:8 "a" "b" ];
       ])

let test_multihomed_in_name_only () =
  (* Both attachments of the registrant ride the same lower DIF, and
     every lower path funnels through the single w.m--w.b edge: one
     link failure severs both "redundant" attachments. *)
  let lower =
    dif "w"
      [ mem ~addr:1 "w.a1"; mem ~addr:2 "w.a2"; mem ~addr:3 "w.m"; mem ~addr:4 "w.b" ]
      [ direct "w.a1" "w.m"; direct "w.a2" "w.m"; direct "w.m" "w.b" ]
  in
  let upper vias =
    dif "d"
      [ mem ~addr:1 ~apps:[ "app" ] "srv"; mem ~addr:2 "r1"; mem ~addr:3 "r2" ]
      (direct "r1" "r2"
       :: List.map (fun (via_a, peer) -> stacked "w" via_a "w.b" peer "srv") vias)
  in
  flags "V230" (model [ lower; upper [ ("w.a1", "r1"); ("w.a2", "r2") ] ]);
  (* a bypass edge gives the lower DIF two disjoint paths: no cut edge *)
  let ringed = { lower with Verify.d_adjacencies = direct "w.a1" "w.b" :: lower.Verify.d_adjacencies } in
  silent (model [ ringed; upper [ ("w.a1", "r1"); ("w.a2", "r2") ] ]);
  (* attachments over two independent lower DIFs share no fate at all *)
  let w2 = wire "w2" in
  let diverse =
    dif "d"
      [ mem ~addr:1 ~apps:[ "app" ] "srv"; mem ~addr:2 "r1"; mem ~addr:3 "r2" ]
      [ direct "r1" "r2"; stacked "w" "w.a1" "w.b" "r1" "srv";
        stacked "w2" "w2.a" "w2.b" "r2" "srv" ]
  in
  silent (model [ lower; w2; diverse ]);
  (* a single-homed registrant over the same choke point stays silent *)
  let single =
    dif "d"
      [ mem ~addr:1 ~apps:[ "app" ] "srv"; mem ~addr:2 "r1" ]
      [ stacked "w" "w.a1" "w.b" "r1" "srv" ]
  in
  silent (model [ lower; single ])

let test_enrollment_cycle () =
  let m =
    model
      [
        dif "x" [ mem ~addr:1 "x.a"; mem ~addr:2 "x.b" ] [ stacked "y" "y.a" "y.b" "x.a" "x.b" ];
        dif "y" [ mem ~addr:1 "y.a"; mem ~addr:2 "y.b" ] [ stacked "x" "x.a" "x.b" "y.a" "y.b" ];
      ]
  in
  flags "V301" m;
  (* reported once, not once per participant *)
  check Alcotest.int "one cycle report" 1
    (List.length (List.filter (String.equal "V301") (codes_of m)))

let test_shards () =
  let line =
    dif "d"
      [ mem ~addr:1 "a"; mem ~addr:2 "b"; mem ~addr:3 "c" ]
      [ direct "a" "b"; direct ~delay:0. "b" "c" ]
  in
  let spec shard_of = { Verify.shard_count = 2; shard_of } in
  flags "V401" (model ~shards:(spec [ ("d", "ghost", 0) ]) [ line ]);
  flags "V402"
    (model ~shards:(spec [ ("d", "a", 0); ("d", "b", 0) ]) [ line ]);
  flags "V403"
    (model ~shards:(spec [ ("d", "a", 0); ("d", "b", 0); ("d", "c", 7) ]) [ line ]);
  flags "V405"
    (model ~shards:(spec [ ("d", "a", 0); ("d", "b", 0); ("d", "c", 0) ]) [ line ]);
  (* zero-delay edge b--c crosses the cut *)
  let bad = model ~shards:(spec [ ("d", "a", 0); ("d", "b", 0); ("d", "c", 1) ]) [ line ] in
  flags "V404" bad;
  (* the positive-delay cut is fine, and reports its lookahead *)
  let good = model ~shards:(spec [ ("d", "a", 0); ("d", "b", 1); ("d", "c", 1) ]) [ line ] in
  let r = Verify.verify good in
  check (Alcotest.list Alcotest.string) "good cut clean" []
    (List.map (fun d -> d.Diag.code) r.diags);
  check Alcotest.int "one cross edge" 1 r.summary.cross_shard_edges;
  check (Alcotest.float 1e-9) "lookahead = the cut edge delay" 0.002
    (match r.summary.lookahead with Some l -> l | None -> nan)

let test_effective_delay () =
  (* stacked delay = shortest path through the lower DIF *)
  let lower =
    dif "w"
      [ mem ~addr:1 "w.a"; mem ~addr:2 "w.m"; mem ~addr:3 "w.b" ]
      [ direct ~delay:0.003 "w.a" "w.m"; direct ~delay:0.004 "w.m" "w.b";
        direct ~delay:0.1 "w.a" "w.b" ]
  in
  let adj = stacked "w" "w.a" "w.b" "a" "b" in
  let d = dif "d" [ mem ~addr:1 "a"; mem ~addr:2 "b" ] [ adj ] in
  let m = model [ lower; d ] in
  check (Alcotest.float 1e-9) "two-hop path beats the slow direct link" 0.007
    (Verify.effective_delay m d adj)

let test_scenarios_clean () =
  List.iter
    (fun (name, m) ->
      let r = Verify.verify m in
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "scenario %s verifies silent" name)
        []
        (List.map (fun d -> d.Diag.code) r.diags))
    (Topo.scenarios ())

let test_lint_topo () =
  match Topo.scenario "recursive-internet" with
  | None -> Alcotest.fail "registry lost recursive-internet"
  | Some m -> (
    match Verify.lint_topo m ~dif:"internet" with
    | None -> Alcotest.fail "no topo summary for the internet DIF"
    | Some t ->
      check Alcotest.int "hop diameter" 2 t.Lint.diameter;
      check (Alcotest.float 1e-6) "rtt = 2 x worst path through the stack" 0.02
        t.Lint.rtt;
      check (Alcotest.float 1e-3) "bottleneck through stacked paths" 50_000_000.
        t.Lint.bottleneck_bit_rate)

let test_model_of_net () =
  let net = Topo.line ~n:4 () in
  let m = Topo.model_of_net ~shards:2 net in
  let r = Verify.verify m in
  check (Alcotest.list Alcotest.string) "live line model verifies silent" []
    (List.map (fun d -> d.Diag.code) r.diags);
  check Alcotest.int "members extracted" 4 r.summary.n_members;
  check Alcotest.int "one cross-shard edge on a split line" 1
    r.summary.cross_shard_edges;
  check Alcotest.bool "positive lookahead" true
    (match r.summary.lookahead with Some l -> l > 0. | None -> false)

(* ---------- QCheck: random recursive stacks ---------- *)

(* Deterministic little generator state so models are reproducible
   from the QCheck-supplied integers alone. *)
let mix seed i = (seed * 1103515245) + (i * 12345)

let clean_model ~n ~extra ~levels ~seed =
  (* the qcheck shrinker can step outside int_range bounds; clamp *)
  let n = max 3 n and extra = max 0 extra and levels = max 1 levels in
  let mname l i = Printf.sprintf "L%dm%d" l i in
  let level l =
    let members =
      List.init n (fun i ->
          let apps = if l = levels - 1 && i = n - 1 then [ "app" ] else [] in
          mem ~addr:(i + 1) ~apps (mname l i))
    in
    let chain lower =
      List.init (n - 1) (fun i ->
          match lower with
          | None -> direct (mname l i) (mname l (i + 1))
          | Some lo ->
            let a = abs (mix seed ((l * 100) + i)) mod n in
            let b = (a + 1 + (abs (mix seed ((l * 100) + i + 7)) mod (n - 1))) mod n in
            stacked lo (mname (l - 1) a) (mname (l - 1) b) (mname l i) (mname l (i + 1)))
    in
    let extra_edges =
      if l > 0 then []
      else
        List.init extra (fun i ->
            let a = abs (mix seed (i + 1)) mod n in
            let b = (a + 1 + (abs (mix seed (i + 17)) mod (n - 1))) mod n in
            direct ~delay:0.001 (mname 0 a) (mname 0 b))
    in
    dif (Printf.sprintf "L%d" l) members (chain (if l = 0 then None else Some (Printf.sprintf "L%d" (l - 1))) @ extra_edges)
  in
  let difs = List.init levels level in
  let top = levels - 1 in
  model ~intents:[ intent (Printf.sprintf "L%d" top) (mname top 0) "app" ] difs

let params =
  QCheck.(
    quad (int_range 3 6) (int_range 0 3) (int_range 1 3) (int_range 0 1_000_000))

let prop_clean_verifies_silent =
  QCheck.Test.make ~name:"random defect-free stacks verify silent" ~count:150 params
    (fun (n, extra, levels, seed) ->
      codes_of (clean_model ~n ~extra ~levels ~seed) = [])

(* Mutate a clean model to plant one defect; the matching code must
   always fire. *)
let plant defect (m : Verify.model) =
  let top = List.nth m.difs (List.length m.difs - 1) in
  match defect with
  | `Unreachable ->
    (* island member registering a fresh name, plus an intent to it *)
    let difs =
      List.map
        (fun d ->
          if d.Verify.d_name = top.Verify.d_name then
            { d with Verify.d_members = mem ~addr:99 ~apps:[ "lost" ] "island" :: d.d_members }
          else d)
        m.difs
    in
    let src = (List.hd top.Verify.d_members).Verify.m_name in
    ( { m with difs; intents = intent top.Verify.d_name src "lost" :: m.intents },
      [ "V102"; "V104" ] )
  | `Collision ->
    let difs =
      List.map
        (fun d ->
          if d.Verify.d_name = top.Verify.d_name then
            {
              d with
              Verify.d_members =
                (match d.Verify.d_members with
                 | a :: b :: rest -> a :: { b with Verify.m_address = a.Verify.m_address } :: rest
                 | short -> short);
            }
          else d)
        m.difs
    in
    ({ m with difs }, [ "V201" ])
  | `Cycle ->
    (* bottom DIF gains an adjacency riding the top DIF; with a single
       level that degenerates to self-support (V211 instead of V301) *)
    let via_a = (List.hd top.Verify.d_members).Verify.m_name in
    let via_b = (List.nth top.Verify.d_members 1).Verify.m_name in
    let difs =
      List.map
        (fun d ->
          if d.Verify.d_name = "L0" then
            let a = (List.hd d.Verify.d_members).Verify.m_name in
            let b = (List.nth d.Verify.d_members 1).Verify.m_name in
            {
              d with
              Verify.d_adjacencies =
                stacked top.Verify.d_name via_a via_b a b :: d.d_adjacencies;
            }
          else d)
        m.difs
    in
    ({ m with difs }, [ (if List.length m.difs = 1 then "V211" else "V301") ])
  | `Zero_delay_cut ->
    (* zero-delay edge appended to L0, then a shard cut right across it *)
    let difs =
      List.map
        (fun d ->
          if d.Verify.d_name = "L0" then
            let a = (List.hd d.Verify.d_members).Verify.m_name in
            let b = (List.nth d.Verify.d_members 1).Verify.m_name in
            { d with Verify.d_adjacencies = direct ~delay:0. a b :: d.d_adjacencies }
          else d)
        m.difs
    in
    let shard_of =
      List.concat_map
        (fun d ->
          List.mapi
            (fun i mem ->
              let cut = d.Verify.d_name = "L0" && i = 0 in
              (d.Verify.d_name, mem.Verify.m_name, if cut then 0 else 1))
            d.Verify.d_members)
        difs
    in
    ({ m with difs; shards = Some { Verify.shard_count = 2; shard_of } }, [ "V404" ])

let defect_gen =
  QCheck.oneofl
    ~print:(function
      | `Unreachable -> "unreachable"
      | `Collision -> "collision"
      | `Cycle -> "cycle"
      | `Zero_delay_cut -> "zero-delay-cut")
    [ `Unreachable; `Collision; `Cycle; `Zero_delay_cut ]

let prop_planted_defect_flagged =
  QCheck.Test.make ~name:"planted defects are always flagged" ~count:150
    QCheck.(pair defect_gen params)
    (fun (defect, (n, extra, levels, seed)) ->
      let planted, expected = plant defect (clean_model ~n ~extra ~levels ~seed) in
      let codes = codes_of planted in
      List.for_all (fun c -> List.mem c codes) expected)

(* ---------- domain-race sanitizer ---------- *)

let test_race_injected () =
  Sanitizer.Race.arm ();
  let c = Race.cell "test.shared" in
  (* two domains, no fork/join annotation, no sync: a textbook race *)
  let d = Domain.spawn (fun () -> Race.write c) in
  Race.write c;
  Domain.join d;
  let diags = Sanitizer.Race.diags () in
  Sanitizer.Race.disarm ();
  check Alcotest.bool "write-write race caught" true
    (List.exists (fun d -> d.Diag.code = "SAN_RACE_WRITE_WRITE") diags)

let test_race_synchronized_clean () =
  Sanitizer.Race.arm ();
  let c = Race.cell "test.ordered" in
  let h = Race.fork () in
  let d =
    Domain.spawn (fun () ->
        Race.child_begin h;
        Race.write c;
        Race.child_end h)
  in
  Domain.join d;
  Race.join h;
  Race.write c;
  let races = Race.races () in
  Sanitizer.Race.disarm ();
  check Alcotest.int "fork/join orders the writes" 0 (List.length races)

let test_race_par_sweep_clean () =
  let items = Array.init 64 (fun i -> i) in
  let f i = (i * 31) land 0xff in
  let sequential = Array.map f items in
  Sanitizer.Race.arm ();
  let parallel = Par.map ~domains:4 f items in
  let diags = Sanitizer.Race.diags () in
  Sanitizer.Race.disarm ();
  check (Alcotest.list Alcotest.string) "annotated Par sweep is race-free" []
    (List.map (fun d -> d.Diag.code) diags);
  check Alcotest.bool "parallel result byte-identical to sequential" true
    (sequential = parallel)

let test_race_disarmed_noop () =
  Race.clear ();
  let c = Race.cell "test.disarmed" in
  let d = Domain.spawn (fun () -> Race.write c) in
  Race.write c;
  Domain.join d;
  check Alcotest.int "nothing recorded while disarmed" 0
    (List.length (Race.races ()))

(* ---------- rule tables ---------- *)

let test_rule_tables () =
  let all = Lint.rules @ Verify.rules @ Sanitizer.rules in
  let codes = List.map (fun (r : Diag.rule) -> r.r_code) all in
  check Alcotest.int "no duplicate codes across tables"
    (List.length codes)
    (List.length (List.sort_uniq compare codes));
  (* every code the verifier can emit is documented *)
  let documented = List.map (fun (r : Diag.rule) -> r.r_code) Verify.rules in
  List.iter
    (fun c ->
      check Alcotest.bool (c ^ " documented") true (List.mem c documented))
    [ "V001"; "V002"; "V003"; "V004"; "V101"; "V102"; "V103"; "V104"; "V110";
      "V201"; "V202"; "V203"; "V210"; "V211"; "V220"; "V221"; "V222"; "V230";
      "V301";
      "V401"; "V402"; "V403"; "V404"; "V405" ];
  List.iter
    (fun c ->
      check Alcotest.bool (c ^ " documented") true
        (List.exists (fun (r : Diag.rule) -> r.r_code = c) Sanitizer.rules))
    [ "SAN_RACE_WRITE_WRITE"; "SAN_RACE_READ_WRITE"; "SAN_RACE_WRITE_READ" ]

let () =
  Alcotest.run "rina_verify"
    [
      ( "fixtures",
        [
          Alcotest.test_case "structural" `Quick test_structural;
          Alcotest.test_case "naming" `Quick test_naming;
          Alcotest.test_case "addressing" `Quick test_addressing;
          Alcotest.test_case "recursion depth" `Quick test_depth;
          Alcotest.test_case "cross-layer feasibility" `Quick test_feasibility;
          Alcotest.test_case "multihomed in name only" `Quick
            test_multihomed_in_name_only;
          Alcotest.test_case "enrollment cycle" `Quick test_enrollment_cycle;
          Alcotest.test_case "shard safety" `Quick test_shards;
          Alcotest.test_case "effective delay" `Quick test_effective_delay;
        ] );
      ( "registry",
        [
          Alcotest.test_case "shipped scenarios clean" `Quick test_scenarios_clean;
          Alcotest.test_case "lint_topo derivation" `Quick test_lint_topo;
          Alcotest.test_case "model_of_net" `Quick test_model_of_net;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_clean_verifies_silent;
          QCheck_alcotest.to_alcotest prop_planted_defect_flagged;
        ] );
      ( "race sanitizer",
        [
          Alcotest.test_case "injected race caught" `Quick test_race_injected;
          Alcotest.test_case "fork/join clean" `Quick test_race_synchronized_clean;
          Alcotest.test_case "Par sweep clean + identical" `Quick
            test_race_par_sweep_clean;
          Alcotest.test_case "disarmed is a no-op" `Quick test_race_disarmed_noop;
        ] );
      ("rule tables", [ Alcotest.test_case "coverage" `Quick test_rule_tables ]);
    ]
