(* Diagnostics subsystem tests: the policy linter (every rule code
   exercised with a violating and a clean spec), duplicate-key
   detection in Policy_lang, the Prng-randomised to_string/parse
   round-trip, Engine.cancel / negative-delay edge cases, and the
   runtime sanitizer (clean runs are silent; injected violations are
   caught). *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Loss = Rina_sim.Loss
module Chan = Rina_sim.Chan
module Policy = Rina_core.Policy
module Policy_lang = Rina_core.Policy_lang
module Efcp = Rina_core.Efcp
module Pdu = Rina_core.Pdu
module Routing = Rina_core.Routing
module Diag = Rina_check.Diag
module Lint = Rina_check.Lint
module Sanitizer = Rina_check.Sanitizer
module Prng = Rina_util.Prng
module Invariant = Rina_util.Invariant

let check = Alcotest.check

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- lint helpers ---------- *)

let codes ?topo spec = List.map (fun d -> d.Diag.code) (Lint.lint ?topo spec)

let fires ?topo code spec =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %S" code spec)
    true
    (List.mem code (codes ?topo spec))

let silent ?topo code spec =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent on %S" code spec)
    false
    (List.mem code (codes ?topo spec))

let severity_of code spec =
  match List.find_opt (fun d -> d.Diag.code = code) (Lint.lint spec) with
  | Some d -> d.Diag.severity
  | None -> Alcotest.fail (code ^ " did not fire")

(* ---------- structural rules ---------- *)

let test_l001_unknown_section () =
  fires "L001" "[bogus]\n";
  silent "L001" "[efcp]\nwindow = 4\n"

let test_l002_unknown_key () =
  fires "L002" "[efcp]\nfoo = 1\n";
  fires "L002" "[dif]\nwindow = 4\n";  (* right key, wrong section *)
  silent "L002" "[efcp]\nwindow = 4\n"

let test_l003_duplicate_key () =
  fires "L003" "[efcp]\nwindow = 4\nwindow = 8\n";
  (* re-opening the section does not launder the duplicate *)
  fires "L003" "[efcp]\nwindow = 4\n[dif]\nmax_ttl = 9\n[efcp]\nwindow = 8\n";
  (* the same key name in different sections is fine *)
  silent "L003" "[scheduler]\nkind = fifo\n[auth]\nkind = none\n";
  silent "L003" "[efcp]\nwindow = 4\nmtu = 1000\n"

let test_l004_malformed_line () =
  fires "L004" "window = 4\n";  (* key outside any section *)
  fires "L004" "[efcp]\njust some words\n";
  silent "L004" "[efcp]\nwindow = 4  # comment\n";
  (* keys under an unknown section are covered by its L001, not
     misreported as "outside any section" *)
  silent "L004" "[bogus]\nfoo = 1\n";
  silent "L002" "[bogus]\nfoo = 1\n"

let test_l005_bad_value () =
  fires "L005" "[efcp]\nwindow = 0\n";
  fires "L005" "[efcp]\nwindow = minus-three\n";
  fires "L005" "[efcp]\nrtx = sometimes\n";
  fires "L005" "[efcp]\ninit_rto = -1\n";
  silent "L005" "[efcp]\nwindow = 4\nrtx = gbn\ninit_rto = 1.5\n"

(* Structural findings do not abort the scan: one bad line still lets
   every other rule run. *)
let test_lint_keeps_going () =
  let spec = "[bogus]\n[efcp]\nfoo = 1\nmin_rto = 2.0\ninit_rto = 0.5\n" in
  let cs = codes spec in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " present") true (List.mem c cs))
    [ "L001"; "L002"; "L101" ]

(* ---------- cross-field consistency rules ---------- *)

let test_l101_rto_floor () =
  fires "L101" "[efcp]\nmin_rto = 2.0\ninit_rto = 0.5\n";
  (* conflict against the *default* init_rto (0.5) must also fire *)
  fires "L101" "[efcp]\nmin_rto = 2.0\n";
  silent "L101" "[efcp]\nmin_rto = 0.1\ninit_rto = 0.5\n";
  Alcotest.(check bool) "L101 is an error" true (severity_of "L101" "[efcp]\nmin_rto = 9\n" = Diag.Error)

let test_l102_rto_ceiling () =
  fires "L102" "[efcp]\ninit_rto = 20\n";
  silent "L102" "[efcp]\ninit_rto = 2\n"

let test_l103_ack_delay_vs_rto () =
  fires "L103" "[efcp]\nack_delay = 0.6\ninit_rto = 0.5\n";
  silent "L103" "[efcp]\nack_delay = 0.1\ninit_rto = 0.5\n";
  silent "L103" "[efcp]\nack_delay = 0\n"

let test_l104_quantum_without_drr () =
  fires "L104" "[scheduler]\nquantum = 3000\n";
  fires "L104" "[scheduler]\nkind = fifo\nquantum = 3000\n";
  silent "L104" "[scheduler]\nkind = drr\nquantum = 3000\n"

let test_l105_quantum_below_mtu () =
  fires "L105" "[scheduler]\nkind = drr\nquantum = 100\n";  (* default mtu 1400 *)
  fires "L105" "[efcp]\nmtu = 9000\n[scheduler]\nkind = drr\nquantum = 1500\n";
  silent "L105" "[scheduler]\nkind = drr\nquantum = 3000\n";
  silent "L105" "[efcp]\nmtu = 100\n[scheduler]\nkind = drr\nquantum = 100\n"

let test_l106_password_needs_secret () =
  fires "L106" "[auth]\nkind = password\n";
  silent "L106" "[auth]\nkind = password\nsecret = hunter2\n";
  silent "L106" "[auth]\nkind = none\n"

let test_l107_secret_without_password () =
  fires "L107" "[auth]\nsecret = hunter2\n";
  fires "L107" "[auth]\nkind = none\nsecret = hunter2\n";
  silent "L107" "[auth]\nkind = password\nsecret = hunter2\n"

let test_l108_dead_not_above_hello () =
  fires "L108" "[routing]\nhello_interval = 2.0\ndead_interval = 1.0\n";
  fires "L108" "[routing]\nhello_interval = 2.0\ndead_interval = 2.0\n";
  silent "L108" "[routing]\nhello_interval = 1.0\ndead_interval = 3.5\n"

let test_l109_dead_within_two_hellos () =
  fires "L109" "[routing]\nhello_interval = 1.0\ndead_interval = 1.5\n";
  silent "L109" "[routing]\nhello_interval = 1.0\ndead_interval = 2.5\n";
  (* below one hello it is L108's problem, not L109's *)
  silent "L109" "[routing]\nhello_interval = 2.0\ndead_interval = 1.0\n"

let test_l110_lsa_damping () =
  fires "L110" "[routing]\nlsa_min_interval = 2.0\nhello_interval = 1.0\n";
  silent "L110" "[routing]\nlsa_min_interval = 0.05\nhello_interval = 1.0\n"

let test_l111_stop_and_wait_delayed_acks () =
  fires "L111" "[efcp]\nwindow = 1\nack_delay = 0.02\n";
  silent "L111" "[efcp]\nwindow = 1\n";
  silent "L111" "[efcp]\nwindow = 8\nack_delay = 0.02\n"

let test_l112_keepalive_vs_dead_peer () =
  fires "L112" "[routing]\nkeepalive_interval = 4.0\ndead_peer_timeout = 3.0\n";
  fires "L112" "[routing]\nkeepalive_interval = 3.0\ndead_peer_timeout = 3.0\n";
  silent "L112" "[routing]\nkeepalive_interval = 1.0\ndead_peer_timeout = 3.5\n";
  (* keepalives disabled: no detection, nothing to mis-tune *)
  silent "L112" "[routing]\nkeepalive_interval = 0\ndead_peer_timeout = 0.1\n";
  Alcotest.(check bool) "L112 is an error" true
    (severity_of "L112"
       "[routing]\nkeepalive_interval = 5.0\ndead_peer_timeout = 1.0\n"
    = Diag.Error)

let test_l113_zero_retry_enrollment () =
  fires "L113" "[enrollment]\nenroll_retries = 0\n";
  silent "L113" "[enrollment]\nenroll_retries = 2\n";
  silent "L113" "";
  (* a warning, not an error: single-shot enrollment is legal *)
  Alcotest.(check bool) "L113 is a warning" true
    (severity_of "L113" "[enrollment]\nenroll_retries = 0\n" = Diag.Warning)

let test_l114_timer_pressure () =
  (* 10 µs hellos alone = 100k timer events per simulated second. *)
  fires "L114" "[routing]\nhello_interval = 0.00001\n";
  (* periods sum: 5 kHz keepalives + 6 kHz acks crosses the 10k line *)
  fires "L114" "[routing]\nkeepalive_interval = 0.0002\n[efcp]\nack_delay = 0.00016\n";
  silent "L114" "[routing]\nhello_interval = 1.0\nkeepalive_interval = 1.0\n";
  silent "L114" "";
  (* a warning (gated to failing by --strict), not an error *)
  Alcotest.(check bool) "L114 is a warning" true
    (severity_of "L114" "[routing]\nhello_interval = 0.00001\n" = Diag.Warning)

let test_l115_reorder_window_vs_sack () =
  fires "L115" "[efcp]\nsack_blocks = 8\nreorder_window = 4\n";
  (* default reorder_window (64) against an oversized sack budget *)
  fires "L115" "[efcp]\nsack_blocks = 100\n";
  silent "L115" "[efcp]\nsack_blocks = 4\nreorder_window = 64\n";
  silent "L115" "[efcp]\nsack_blocks = 0\nreorder_window = 1\n";
  silent "L115" "";
  Alcotest.(check bool) "L115 is an error" true
    (severity_of "L115" "[efcp]\nsack_blocks = 8\nreorder_window = 4\n"
     = Diag.Error)

let test_l116_anti_entropy_vs_hello () =
  fires "L116" "[routing]\nanti_entropy_interval = 0.5\nhello_interval = 1.0\n";
  silent "L116" "[routing]\nanti_entropy_interval = 5.0\nhello_interval = 1.0\n";
  (* 0 disables anti-entropy entirely: nothing to warn about *)
  silent "L116" "[routing]\nanti_entropy_interval = 0\nhello_interval = 1.0\n";
  silent "L116" "";
  Alcotest.(check bool) "L116 is a warning" true
    (severity_of "L116"
       "[routing]\nanti_entropy_interval = 0.5\nhello_interval = 1.0\n"
     = Diag.Warning)

let test_l117_sample_rate_range () =
  fires "L117" "[telemetry]\ntrace_sample_rate = 0\n";
  fires "L117" "[telemetry]\ntrace_sample_rate = 1.5\n";
  (* negatives never reach L117: the key is typed non-negative (L005) *)
  fires "L005" "[telemetry]\ntrace_sample_rate = -0.1\n";
  silent "L117" "[telemetry]\ntrace_sample_rate = 0.01\n";
  silent "L117" "[telemetry]\ntrace_sample_rate = 1.0\n";
  silent "L117" "";
  Alcotest.(check bool) "L117 is an error" true
    (severity_of "L117" "[telemetry]\ntrace_sample_rate = 0\n" = Diag.Error)

let test_l118_snapshot_vs_wheel () =
  (* below the 0.05 s wheel slot: ticks collapse into the same slot *)
  fires "L118" "[telemetry]\nsnapshot_interval = 0.01\n";
  silent "L118" "[telemetry]\nsnapshot_interval = 0.5\n";
  (* 0 disables snapshots entirely: nothing to warn about *)
  silent "L118" "[telemetry]\nsnapshot_interval = 0\n";
  silent "L118" "";
  Alcotest.(check bool) "L118 is a warning" true
    (severity_of "L118" "[telemetry]\nsnapshot_interval = 0.01\n"
     = Diag.Warning)

let test_l119_congestion_config () =
  (* not a probability *)
  fires "L119" "[congestion]\nmark_probability = 1.5\n";
  (* negatives are a type error, not a consistency error *)
  fires "L005" "[congestion]\nmark_probability = -0.5\n";
  (* threshold at/above the per-class queue capacity: tail drop wins *)
  fires "L119" "[congestion]\nmark_threshold = 256\n";
  fires "L119" "[congestion]\nmark_threshold = 1000\n";
  silent "L119" "[congestion]\nmark_threshold = 255\n";
  (* admission without backoff: zero-delay retry storm *)
  fires "L119" "[congestion]\nadmission_max_pending = 4\nadmission_backoff = 0\n";
  (* the default backoff (0.2 s) is positive, so the limit alone is fine *)
  silent "L119" "[congestion]\nadmission_max_pending = 4\n";
  silent "L119" "[congestion]\nmark_threshold = 32\nmark_probability = 0.2\n";
  silent "L119" "";
  Alcotest.(check bool) "L119 is an error" true
    (severity_of "L119" "[congestion]\nmark_probability = 2\n" = Diag.Error)

let test_l120_congestion_signal_unwired () =
  (* pushback relays a congestion signal that marking must generate *)
  fires "L120" "[congestion]\npushback = on\n";
  fires "L120" "[congestion]\npushback = on\nmark_threshold = 0\n";
  silent "L120" "[congestion]\npushback = on\nmark_threshold = 32\n";
  silent "L120" "[congestion]\npushback = off\n";
  (* marking armed but the coin never wins *)
  fires "L120" "[congestion]\nmark_threshold = 32\nmark_probability = 0\n";
  silent "L120" "[congestion]\nmark_threshold = 32\nmark_probability = 0.5\n";
  silent "L120" "";
  Alcotest.(check bool) "L120 is a warning" true
    (severity_of "L120" "[congestion]\npushback = on\n" = Diag.Warning)

let test_l121_shard_spec_unusable () =
  (* standalone half: mailbox bound below the ring minimum *)
  fires "L121" "[shard]\nshards = 4\nmailbox_capacity = 1\n";
  silent "L121" "[shard]\nshards = 4\nmailbox_capacity = 64\n";
  (* topology half: shards requested but the partition buys no time *)
  let no_la = { Lint.diameter = 2; bottleneck_bit_rate = 1e7; rtt = 0.01; lookahead = None } in
  let zero_la = { no_la with Lint.lookahead = Some 0. } in
  let good_la = { no_la with Lint.lookahead = Some 0.002 } in
  fires ~topo:no_la "L121" "[shard]\nshards = 4\n";
  fires ~topo:zero_la "L121" "[shard]\nshards = 2\n";
  silent ~topo:good_la "L121" "[shard]\nshards = 4\n";
  (* one shard (or none) is sequential: nothing to complain about *)
  silent ~topo:no_la "L121" "[shard]\nshards = 1\n";
  silent ~topo:no_la "L121" "";
  (* without a topology the lookahead half cannot run *)
  silent "L121" "[shard]\nshards = 4\n";
  Alcotest.(check bool) "L121 is an error" true
    (severity_of "L121" "[shard]\nmailbox_capacity = 1\n" = Diag.Error)

let test_l122_multipath_monitor () =
  (* Down fires while the path is still Up: Suspect unreachable *)
  fires "L122" "[multipath]\nsuspect_misses = 4\ndown_misses = 2\n";
  silent "L122" "[multipath]\nsuspect_misses = 2\ndown_misses = 4\n";
  silent "L122" "[multipath]\nsuspect_misses = 3\ndown_misses = 3\n";
  (* armed monitor with a zero re-probe base: busy loop on Down paths *)
  fires "L122" "[multipath]\nprobe_interval = 0.05\nreprobe_backoff = 0\n";
  silent "L122" "[multipath]\nprobe_interval = 0.05\nreprobe_backoff = 0.1\n";
  (* monitor off: the zero backoff is never consulted *)
  silent "L122" "[multipath]\nreprobe_backoff = 0\n";
  silent "L122" "";
  Alcotest.(check bool) "L122 is an error" true
    (severity_of "L122" "[multipath]\nsuspect_misses = 4\ndown_misses = 2\n"
     = Diag.Error)

let test_l123_failover_slower_than_routing () =
  (* 0.05 x 4 = 0.2 s, dead_peer_timeout defaults to 3.5 s: fine *)
  silent "L123" "[multipath]\nprobe_interval = 0.05\n";
  (* 1 x 4 = 4 s >= 3.5 s: Down fires after routing already tore down *)
  fires "L123" "[multipath]\nprobe_interval = 1\n";
  silent "L123"
    "[multipath]\nprobe_interval = 1\ndown_misses = 3\n[routing]\n\
     dead_peer_timeout = 10\n";
  fires "L123"
    "[multipath]\nprobe_interval = 0.05\n[routing]\ndead_peer_timeout = 0.1\n";
  (* monitor off: no failover path to race *)
  silent "L123" "[multipath]\ndown_misses = 100\n";
  silent "L123" "";
  Alcotest.(check bool) "L123 is a warning" true
    (severity_of "L123" "[multipath]\nprobe_interval = 1\n" = Diag.Warning)

(* ---------- topology-aware rules ---------- *)

let topo =
  { Lint.diameter = 5; bottleneck_bit_rate = 1e8; rtt = 0.1; lookahead = Some 0.002 }

let test_l201_ttl_vs_diameter () =
  fires ~topo "L201" "[dif]\nmax_ttl = 3\n";
  silent ~topo "L201" "[dif]\nmax_ttl = 8\n";
  (* without a topology the rule cannot run *)
  silent "L201" "[dif]\nmax_ttl = 3\n"

let test_l202_window_vs_bdp () =
  (* BDP = 1e8/8 * 0.1 = 1.25 MB; default 64 x 1400 = 89.6 kB *)
  fires ~topo "L202" "[efcp]\nwindow = 64\nmtu = 1400\n";
  silent ~topo "L202" "[efcp]\nwindow = 1000\nmtu = 1400\n";
  silent "L202" "[efcp]\nwindow = 64\nmtu = 1400\n"

let test_example_shaped_specs_clean () =
  (* The spec shapes shipped in examples/policies must stay clean. *)
  List.iter
    (fun spec ->
      check Alcotest.(list string) ("clean: " ^ spec) [] (codes spec))
    [
      "[scheduler]\nkind = priority\n[auth]\nkind = password\nsecret = x\n[efcp]\nwindow = 64\nrtx = selective\n";
      "[efcp]\nwindow = 1\n";
      "";
    ]

(* ---------- Policy_lang duplicate keys ---------- *)

let test_parse_rejects_duplicates () =
  (match Policy_lang.parse "[efcp]\nwindow = 4\nwindow = 8\n" with
   | Ok _ -> Alcotest.fail "duplicate key accepted"
   | Error e ->
     Alcotest.(check bool) "names the key" true
       (contains_sub e "duplicate key \"window\"");
     Alcotest.(check bool) "names both lines" true
       (contains_sub e "line 3" && contains_sub e "line 2"));
  (match Policy_lang.parse "[efcp]\nwindow = 4\n[dif]\nmax_ttl = 5\n[efcp]\nwindow = 8\n" with
   | Ok _ -> Alcotest.fail "duplicate across re-opened section accepted"
   | Error _ -> ());
  (* same key name in different sections is legal *)
  match Policy_lang.parse "[scheduler]\nkind = fifo\n[auth]\nkind = none\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ---------- Prng-randomised round-trip ---------- *)

let milli rng lo hi = float_of_int (lo + Prng.int rng (hi - lo + 1)) /. 1000.

let random_secret rng =
  String.init (1 + Prng.int rng 12) (fun _ ->
      "abcdefghijklmnopqrstuvwxyz0123456789".[Prng.int rng 36])

let random_policy rng =
  {
    Policy.efcp =
      {
        Policy.window = 1 + Prng.int rng 512;
        mtu = 16 + Prng.int rng 8984;
        init_rto = milli rng 1 4000;
        min_rto = milli rng 0 500;
        max_rtx = 1 + Prng.int rng 50;
        ack_delay = (if Prng.bool rng then 0. else milli rng 1 1000);
        rtx_strategy =
          (match Prng.int rng 3 with
           | 0 -> Policy.Selective_repeat
           | 1 -> Policy.Go_back_n
           | _ -> Policy.No_rtx);
        congestion_control = Prng.bool rng;
        sack_blocks = Prng.int rng 9;
        reorder_window = 1 + Prng.int rng 512;
        max_dup_cache = Prng.int rng 1025;
      };
    scheduler =
      (match Prng.int rng 3 with
       | 0 -> Policy.Fifo
       | 1 -> Policy.Priority_queueing
       | _ -> Policy.Drr (64 + Prng.int rng 4000));
    routing =
      {
        Policy.hello_interval = milli rng 100 9999;
        dead_interval = milli rng 100 19999;
        lsa_min_interval = milli rng 1 999;
        refresh_ticks = 1 + Prng.int rng 50;
        keepalive_interval = (if Prng.bool rng then 0. else milli rng 100 9999);
        dead_peer_timeout = milli rng 100 19999;
        lsa_max_age = (if Prng.bool rng then 0. else milli rng 1000 99999);
        anti_entropy_interval = (if Prng.bool rng then 0. else milli rng 100 9999);
      };
    enrollment =
      {
        Policy.enroll_timeout = milli rng 100 9999;
        enroll_retries = Prng.int rng 10;
        retry_backoff = milli rng 10 2000;
      };
    auth =
      (if Prng.bool rng then Policy.Auth_none
       else Policy.Auth_password (random_secret rng));
    acl = Policy.Allow_all;
    max_ttl = 1 + Prng.int rng 255;
    telemetry =
      {
        Policy.trace_sample_rate = milli rng 1 1000;
        snapshot_interval = (if Prng.bool rng then 0. else milli rng 100 9999);
        flight_ring_capacity = Prng.int rng 100_000;
      };
    congestion =
      {
        Policy.mark_threshold = Prng.int rng 257;
        mark_probability = milli rng 0 1000;
        pushback = Prng.bool rng;
        admission_max_pending = Prng.int rng 1000;
        admission_backoff = milli rng 10 2000;
      };
    shard =
      {
        Policy.shards = Prng.int rng 9;
        mailbox_capacity = 2 + Prng.int rng 100_000;
      };
    multipath =
      (let mode rng = if Prng.bool rng then Policy.Primary_backup else Policy.Weighted_rr in
       {
         Policy.probe_interval = (if Prng.bool rng then 0. else milli rng 10 9999);
         suspect_misses = 1 + Prng.int rng 8;
         down_misses = 1 + Prng.int rng 16;
         reprobe_backoff = milli rng 1 5000;
         latency = mode rng;
         throughput = mode rng;
         background = mode rng;
       });
  }

let test_roundtrip_random_policies () =
  let rng = Prng.create 20260807 in
  for i = 1 to 300 do
    let p = random_policy rng in
    let text = Policy_lang.to_string p in
    (match Policy_lang.parse text with
     | Error e -> Alcotest.fail (Printf.sprintf "iteration %d: reparse failed: %s" i e)
     | Ok p' ->
       if p' <> p then
         Alcotest.fail
           (Printf.sprintf "iteration %d: policy changed across to_string/parse:\n%s" i
              text));
    (* whatever the policy, its rendering is structurally lint-clean *)
    List.iter
      (fun d ->
        if String.length d.Diag.code = 4 && String.sub d.Diag.code 0 3 = "L00" then
          Alcotest.fail
            (Printf.sprintf "iteration %d: structural finding %s on rendered spec" i
               (Diag.to_string d)))
      (Lint.lint text)
  done

(* ---------- Engine.cancel / clamping edge cases ---------- *)

let test_cancel_after_fire_is_noop () =
  let e = Engine.create () in
  let fired = ref 0 in
  let h = Engine.schedule e ~delay:1. (fun () -> incr fired) in
  Engine.run e;
  check Alcotest.int "fired once" 1 !fired;
  Engine.cancel h;
  Engine.cancel h;
  (* double cancel *)
  Engine.run e;
  check Alcotest.int "still once" 1 !fired

let test_cancel_spares_same_time_events () =
  let e = Engine.create () in
  let log = ref [] in
  let _a = Engine.schedule e ~delay:1. (fun () -> log := "a" :: !log) in
  let b = Engine.schedule e ~delay:1. (fun () -> log := "b" :: !log) in
  let _c = Engine.schedule e ~delay:1. (fun () -> log := "c" :: !log) in
  Engine.cancel b;
  Engine.run e;
  check Alcotest.(list string) "others keep FIFO order" [ "a"; "c" ] (List.rev !log)

let test_negative_delay_fires_now_not_in_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5. (fun () -> ()));
  Engine.run e;
  check (Alcotest.float 1e-9) "clock advanced" 5. (Engine.now e);
  let fired_at = ref (-1.) in
  ignore (Engine.schedule e ~delay:(-3.) (fun () -> fired_at := Engine.now e));
  ignore (Engine.schedule e ~delay:0.5 (fun () -> ()));
  Engine.run e;
  check (Alcotest.float 1e-9) "clamped to now" 5. !fired_at;
  check (Alcotest.float 1e-9) "no time travel" 5.5 (Engine.now e)

let test_schedule_at_past_clamped () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:2. (fun () -> ()));
  Engine.run e;
  let fired_at = ref (-1.) in
  ignore (Engine.schedule_at e ~time:1. (fun () -> fired_at := Engine.now e));
  Engine.run e;
  check (Alcotest.float 1e-9) "past time clamped to now" 2. !fired_at

(* ---------- sanitizer ---------- *)

let with_sanitizer f =
  Sanitizer.enable ();
  Fun.protect ~finally:Sanitizer.disable f

let test_sanitizer_clean_run_is_silent () =
  with_sanitizer (fun () ->
      let engine = Engine.create () in
      let rng = Prng.create 42 in
      let link =
        Link.create engine rng ~bit_rate:1e7 ~delay:0.01 ~queue_capacity:4
          ~loss:(Loss.Bernoulli 0.2) ()
      in
      let a = Link.endpoint_a link and b = Link.endpoint_b link in
      let got = ref 0 in
      b.Chan.set_receiver (fun _ -> incr got);
      a.Chan.set_receiver (fun _ -> ());
      (* enough traffic to exercise queue-tail drops and the loss model,
         plus a carrier flap to void frames in flight *)
      for i = 0 to 199 do
        ignore
          (Engine.schedule engine ~delay:(0.001 *. float_of_int i) (fun () ->
               a.Chan.send (Bytes.create 500);
               b.Chan.send (Bytes.create 200)))
      done;
      ignore (Engine.schedule engine ~delay:0.05 (fun () -> Link.set_up link false));
      ignore (Engine.schedule engine ~delay:0.12 (fun () -> Link.set_up link true));
      Engine.run engine;
      check Alcotest.(list string) "no invariant violations" []
        (List.map Diag.to_string (Sanitizer.violations ()));
      check Alcotest.(list string) "conservation holds" []
        (List.map Diag.to_string (Sanitizer.audit_link link));
      check Alcotest.(list string) "drained" []
        (List.map Diag.to_string (Sanitizer.audit_drained engine));
      Alcotest.(check bool) "some frames made it" true (!got > 0))

let test_sanitizer_catches_conservation_violation () =
  with_sanitizer (fun () ->
      let engine = Engine.create () in
      let rng = Prng.create 7 in
      let link = Link.create engine rng ~bit_rate:1e7 ~delay:0.005 () in
      let a = Link.endpoint_a link in
      (Link.endpoint_b link).Chan.set_receiver (fun _ -> ());
      for _ = 1 to 50 do
        a.Chan.send (Bytes.create 300)
      done;
      Engine.run engine;
      check Alcotest.(list string) "clean before tampering" []
        (List.map Diag.to_string (Sanitizer.audit_link link));
      (* Inject the accounting bug: one frame enters the link but never
         reaches any delivered/dropped path — a leak the audit must
         flag. *)
      let c = Link.conservation_a link in
      c.Link.injected <- c.Link.injected + 1;
      match Sanitizer.audit_link link with
      | [ d ] ->
        check Alcotest.string "code" "SAN_PDU_CONSERVATION" d.Diag.code;
        Alcotest.(check bool) "is an error" true (d.Diag.severity = Diag.Error);
        Alcotest.(check bool) "counts the leak" true
          (contains_sub d.Diag.message "1 unaccounted")
      | ds ->
        Alcotest.fail
          (Printf.sprintf "expected exactly one finding, got %d" (List.length ds)))

let test_sanitizer_efcp_lossy_transfer_clean () =
  with_sanitizer (fun () ->
      let engine = Engine.create () in
      let rng = Prng.create 99 in
      let cfg =
        { Policy.default_efcp with Policy.window = 8; init_rto = 0.1; min_rto = 0.02 }
      in
      let sender_ref = ref None and receiver_ref = ref None in
      let n = ref 0 in
      let to_receiver (pdu : Pdu.t) =
        incr n;
        if not (Prng.bernoulli rng 0.1) then
          ignore
            (Engine.schedule engine ~delay:0.002 (fun () ->
                 match !receiver_ref with Some r -> Efcp.handle_pdu r pdu | None -> ()));
        0
      in
      let to_sender (pdu : Pdu.t) =
        ignore
          (Engine.schedule engine ~delay:0.002 (fun () ->
               match !sender_ref with Some s -> Efcp.handle_pdu s pdu | None -> ()));
        0
      in
      let delivered = ref 0 in
      let sender =
        Efcp.create engine ~config:cfg ~in_order:true ~local_cep:1 ~remote_cep:2
          ~qos_id:1 ~send_pdu:to_receiver
          ~deliver:(fun _ -> ())
          ~on_error:(fun _ -> ())
          ()
      in
      let receiver =
        Efcp.create engine ~config:cfg ~in_order:true ~local_cep:2 ~remote_cep:1
          ~qos_id:1 ~send_pdu:to_sender
          ~deliver:(fun _ -> incr delivered)
          ~on_error:(fun _ -> ())
          ()
      in
      sender_ref := Some sender;
      receiver_ref := Some receiver;
      for i = 1 to 100 do
        Efcp.send sender (Bytes.of_string (Printf.sprintf "m%d" i))
      done;
      Engine.run ~until:30. engine;
      check Alcotest.int "all delivered despite loss" 100 !delivered;
      check Alcotest.(list string) "efcp invariants hold under loss" []
        (List.map Diag.to_string (Sanitizer.violations ())))

let test_sanitizer_violation_reporting () =
  with_sanitizer (fun () ->
      Invariant.record ~code:"SAN_TEST" "something impossible happened";
      Invariant.record ~code:"SAN_TEST" "again";
      match Sanitizer.violations () with
      | [ d ] ->
        check Alcotest.string "code" "SAN_TEST" d.Diag.code;
        Alcotest.(check bool) "first detail + count" true
          (contains_sub d.Diag.message "something impossible"
           && contains_sub d.Diag.message "2 occurrences")
      | ds -> Alcotest.fail (Printf.sprintf "got %d diagnostics" (List.length ds)))

let test_routing_loop_detection () =
  let nh pairs : Routing.next_hops =
    let h = Hashtbl.create 8 in
    List.iter (fun (dst, next) -> Hashtbl.replace h dst (next, 1.)) pairs;
    h
  in
  (* consistent line 1 - 2 - 3 *)
  let clean =
    [ (1, nh [ (2, 2); (3, 2) ]); (2, nh [ (1, 1); (3, 3) ]); (3, nh [ (1, 2); (2, 2) ]) ]
  in
  check Alcotest.(list string) "consistent tables are loop-free" []
    (List.map Diag.to_string (Sanitizer.check_routing_loops clean));
  (* 1 and 2 point at each other for destination 3 *)
  let looping = [ (1, nh [ (3, 2) ]); (2, nh [ (3, 1) ]) ] in
  let ds = Sanitizer.check_routing_loops looping in
  Alcotest.(check bool) "loop reported" true
    (List.exists (fun d -> d.Diag.code = "SAN_ROUTE_LOOP") ds);
  (* 2 simply has no route onward for destination 3 *)
  let blackhole = [ (1, nh [ (3, 2) ]); (2, nh [ (1, 1) ]) ] in
  let ds = Sanitizer.check_routing_loops blackhole in
  Alcotest.(check bool) "blackhole reported" true
    (List.exists (fun d -> d.Diag.code = "SAN_ROUTE_BLACKHOLE") ds)

let test_spf_tables_pass_sanitizer () =
  (* Real forwarding tables out of the link-state SPF must be loop-free. *)
  let lsa origin neighbors = { Routing.Lsa.origin; seq = 1; neighbors } in
  let db = Routing.create () in
  (* square with a diagonal: 1-2, 2-3, 3-4, 4-1, 1-3 *)
  let edges =
    [
      (1, [ (2, 1.); (4, 1.); (3, 1.5) ]);
      (2, [ (1, 1.); (3, 1.) ]);
      (3, [ (2, 1.); (4, 1.); (1, 1.5) ]);
      (4, [ (3, 1.); (1, 1.) ]);
    ]
  in
  List.iter (fun (o, ns) -> ignore (Routing.install db (lsa o ns))) edges;
  let tables = List.map (fun (o, _) -> (o, Routing.spf db ~source:o)) edges in
  check Alcotest.(list string) "spf tables are clean" []
    (List.map Diag.to_string (Sanitizer.check_routing_loops tables))

let () =
  Alcotest.run "check"
    [
      ( "lint-structure",
        [
          Alcotest.test_case "L001 unknown section" `Quick test_l001_unknown_section;
          Alcotest.test_case "L002 unknown key" `Quick test_l002_unknown_key;
          Alcotest.test_case "L003 duplicate key" `Quick test_l003_duplicate_key;
          Alcotest.test_case "L004 malformed line" `Quick test_l004_malformed_line;
          Alcotest.test_case "L005 bad value" `Quick test_l005_bad_value;
          Alcotest.test_case "lint keeps going" `Quick test_lint_keeps_going;
        ] );
      ( "lint-consistency",
        [
          Alcotest.test_case "L101 rto floor" `Quick test_l101_rto_floor;
          Alcotest.test_case "L102 rto ceiling" `Quick test_l102_rto_ceiling;
          Alcotest.test_case "L103 ack delay vs rto" `Quick test_l103_ack_delay_vs_rto;
          Alcotest.test_case "L104 quantum without drr" `Quick test_l104_quantum_without_drr;
          Alcotest.test_case "L105 quantum below mtu" `Quick test_l105_quantum_below_mtu;
          Alcotest.test_case "L106 password needs secret" `Quick test_l106_password_needs_secret;
          Alcotest.test_case "L107 secret without password" `Quick test_l107_secret_without_password;
          Alcotest.test_case "L108 dead vs hello" `Quick test_l108_dead_not_above_hello;
          Alcotest.test_case "L109 dead within 2 hellos" `Quick test_l109_dead_within_two_hellos;
          Alcotest.test_case "L110 lsa damping" `Quick test_l110_lsa_damping;
          Alcotest.test_case "L111 stop-and-wait delayed acks" `Quick test_l111_stop_and_wait_delayed_acks;
          Alcotest.test_case "L112 keepalive vs dead peer" `Quick test_l112_keepalive_vs_dead_peer;
          Alcotest.test_case "L113 zero-retry enrollment" `Quick test_l113_zero_retry_enrollment;
          Alcotest.test_case "L114 timer pressure" `Quick test_l114_timer_pressure;
          Alcotest.test_case "L115 reorder window vs sack" `Quick
            test_l115_reorder_window_vs_sack;
          Alcotest.test_case "L116 anti-entropy vs hello" `Quick
            test_l116_anti_entropy_vs_hello;
          Alcotest.test_case "L117 sample-rate range" `Quick
            test_l117_sample_rate_range;
          Alcotest.test_case "L118 snapshot vs wheel slot" `Quick
            test_l118_snapshot_vs_wheel;
          Alcotest.test_case "L119 congestion config" `Quick
            test_l119_congestion_config;
          Alcotest.test_case "L120 unwired congestion signal" `Quick
            test_l120_congestion_signal_unwired;
          Alcotest.test_case "L121 unusable shard spec" `Quick
            test_l121_shard_spec_unusable;
          Alcotest.test_case "L122 multipath monitor" `Quick
            test_l122_multipath_monitor;
          Alcotest.test_case "L123 failover vs dead-peer" `Quick
            test_l123_failover_slower_than_routing;
        ] );
      ( "lint-topology",
        [
          Alcotest.test_case "L201 ttl vs diameter" `Quick test_l201_ttl_vs_diameter;
          Alcotest.test_case "L202 window vs bdp" `Quick test_l202_window_vs_bdp;
          Alcotest.test_case "example-shaped specs clean" `Quick test_example_shaped_specs_clean;
        ] );
      ( "policy-lang",
        [
          Alcotest.test_case "duplicate keys rejected" `Quick test_parse_rejects_duplicates;
          Alcotest.test_case "random round-trip (Prng)" `Quick test_roundtrip_random_policies;
        ] );
      ( "engine-edge",
        [
          Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire_is_noop;
          Alcotest.test_case "cancel spares same-time events" `Quick
            test_cancel_spares_same_time_events;
          Alcotest.test_case "negative delay clamps to now" `Quick
            test_negative_delay_fires_now_not_in_past;
          Alcotest.test_case "schedule_at past clamps" `Quick test_schedule_at_past_clamped;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "clean link run silent" `Quick test_sanitizer_clean_run_is_silent;
          Alcotest.test_case "conservation violation caught" `Quick
            test_sanitizer_catches_conservation_violation;
          Alcotest.test_case "efcp lossy transfer clean" `Quick
            test_sanitizer_efcp_lossy_transfer_clean;
          Alcotest.test_case "violation reporting" `Quick test_sanitizer_violation_reporting;
          Alcotest.test_case "routing loop detection" `Quick test_routing_loop_detection;
          Alcotest.test_case "spf tables pass" `Quick test_spf_tables_pass_sanitizer;
        ] );
    ]
