(* Unit tests for the discrete-event simulator. *)

module Engine = Rina_sim.Engine
module Loss = Rina_sim.Loss
module Chan = Rina_sim.Chan
module Link = Rina_sim.Link
module Medium = Rina_sim.Medium
module Trace = Rina_sim.Trace
module Prng = Rina_util.Prng
module Flight = Rina_util.Flight
module Trace_report = Rina_check.Trace_report
module Fault = Rina_sim.Fault
module Mangle = Rina_sim.Mangle
module Sanitizer = Rina_check.Sanitizer
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types

let check = Alcotest.check

(* ---------- Engine ---------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log));
  Engine.run e;
  check Alcotest.(list int) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3. (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1. (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check Alcotest.(list int) "fifo among equals" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1. (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:5. (fun () -> incr fired));
  Engine.run ~until:2. e;
  check Alcotest.int "only first" 1 !fired;
  check (Alcotest.float 1e-9) "clock at until" 2. (Engine.now e);
  Engine.run ~until:10. e;
  check Alcotest.int "second later" 2 !fired

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:(-5.) (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "fired" true !fired;
  check (Alcotest.float 1e-9) "no time travel" 0. (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:1. (fun () -> log := "inner" :: !log))));
  Engine.run e;
  check Alcotest.(list string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 1e-9) "time 2" 2. (Engine.now e)

let test_engine_step () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1. (fun () -> ()));
  Alcotest.(check bool) "step true" true (Engine.step e);
  Alcotest.(check bool) "step false when drained" false (Engine.step e)

(* ---------- Loss ---------- *)

let test_loss_none_and_extremes () =
  let rng = Prng.create 3 in
  let s = Loss.make_state Loss.No_loss in
  for _ = 1 to 100 do
    Alcotest.(check bool) "no_loss" false (Loss.drops s rng)
  done;
  let s1 = Loss.make_state (Loss.Bernoulli 1.0) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 drops" true (Loss.drops s1 rng)
  done;
  let s0 = Loss.make_state (Loss.Bernoulli 0.0) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 keeps" false (Loss.drops s0 rng)
  done

let test_loss_bernoulli_rate () =
  let rng = Prng.create 5 in
  let s = Loss.make_state (Loss.Bernoulli 0.3) in
  let drops = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Loss.drops s rng then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "~30%" true (Float.abs (rate -. 0.3) < 0.02)

let test_loss_gilbert_elliott_average () =
  let rng = Prng.create 7 in
  let spec =
    Loss.Gilbert_elliott
      { p_good_to_bad = 0.1; p_bad_to_good = 0.3; loss_good = 0.0; loss_bad = 0.5 }
  in
  let s = Loss.make_state spec in
  let drops = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Loss.drops s rng then incr drops
  done;
  (* Stationary P(bad) = 0.1/(0.1+0.3) = 0.25; mean loss = 0.125. *)
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "~12.5%" true (Float.abs (rate -. 0.125) < 0.01)

(* ---------- Chan ---------- *)

let test_chan_pair () =
  let a, b = Chan.pair () in
  let got_b = ref [] and got_a = ref [] in
  b.Chan.set_receiver (fun f -> got_b := Bytes.to_string f :: !got_b);
  a.Chan.set_receiver (fun f -> got_a := Bytes.to_string f :: !got_a);
  a.Chan.send (Bytes.of_string "ping");
  b.Chan.send (Bytes.of_string "pong");
  check Alcotest.(list string) "b received" [ "ping" ] !got_b;
  check Alcotest.(list string) "a received" [ "pong" ] !got_a;
  check Alcotest.int "a tx" 1 (Rina_util.Metrics.get a.Chan.stats "tx");
  check Alcotest.int "a rx" 1 (Rina_util.Metrics.get a.Chan.stats "rx")

(* ---------- Link ---------- *)

let mk_link ?queue_capacity ?loss () =
  let e = Engine.create () in
  let rng = Prng.create 1 in
  let l =
    Link.create e rng ~bit_rate:1_000_000. ~delay:0.01 ?queue_capacity ?loss ()
  in
  (e, l)

let test_link_latency () =
  let e, l = mk_link () in
  let arrival = ref None in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> arrival := Some (Engine.now e));
  (* 1000 bytes at 1 Mb/s = 8 ms serialisation + 10 ms propagation. *)
  (Link.endpoint_a l).Chan.send (Bytes.create 1000);
  Engine.run e;
  match !arrival with
  | Some t -> check (Alcotest.float 1e-9) "latency" 0.018 t
  | None -> Alcotest.fail "frame lost"

let test_link_serialization_spacing () =
  let e, l = mk_link () in
  let times = ref [] in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> times := Engine.now e :: !times);
  (Link.endpoint_a l).Chan.send (Bytes.create 1000);
  (Link.endpoint_a l).Chan.send (Bytes.create 1000);
  Engine.run e;
  match List.rev !times with
  | [ t1; t2 ] -> check (Alcotest.float 1e-9) "8ms apart" 0.008 (t2 -. t1)
  | _ -> Alcotest.fail "expected 2 frames"

let test_link_queue_overflow () =
  let e, l = mk_link ~queue_capacity:4 () in
  let received = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  for _ = 1 to 10 do
    (Link.endpoint_a l).Chan.send (Bytes.create 100)
  done;
  Engine.run e;
  check Alcotest.int "only queue_capacity delivered" 4 !received;
  check Alcotest.int "drops counted" 6
    (Rina_util.Metrics.get (Link.stats_a l) "dropped_queue")

let test_link_down_drops_and_notifies () =
  let e, l = mk_link () in
  let received = ref 0 and carrier = ref [] in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  (Link.endpoint_a l).Chan.on_carrier (fun up -> carrier := up :: !carrier);
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Link.set_up l false;
  Engine.run e;
  check Alcotest.int "in-flight dropped" 0 !received;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "down drops" 0 !received;
  Link.set_up l true;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "up again" 1 !received;
  check Alcotest.(list bool) "watcher saw down then up" [ false; true ] (List.rev !carrier)

let test_link_blackhole_silent () =
  let e, l = mk_link () in
  let received = ref 0 and carrier_events = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  (Link.endpoint_a l).Chan.on_carrier (fun _ -> incr carrier_events);
  Link.set_blackhole l true;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "swallowed" 0 !received;
  check Alcotest.int "no carrier event" 0 !carrier_events;
  Alcotest.(check bool) "is_up still true" true ((Link.endpoint_a l).Chan.is_up ());
  Link.set_blackhole l false;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "healed" 1 !received

let test_link_loss () =
  let e = Engine.create () in
  let rng = Prng.create 1 in
  let l =
    Link.create e rng ~bit_rate:1_000_000_000. ~delay:0.0001 ~queue_capacity:4096
      ~loss:(Loss.Bernoulli 0.5) ()
  in
  let received = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  for _ = 1 to 2000 do
    (Link.endpoint_a l).Chan.send (Bytes.create 10)
  done;
  Engine.run e;
  Alcotest.(check bool) "~half arrive" true
    (!received > 800 && !received < 1200)

let test_link_directions_independent () =
  let e, l = mk_link () in
  let at_a = ref 0 and at_b = ref 0 in
  (Link.endpoint_a l).Chan.set_receiver (fun _ -> incr at_a);
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr at_b);
  (Link.endpoint_a l).Chan.send (Bytes.create 10);
  (Link.endpoint_b l).Chan.send (Bytes.create 10);
  (Link.endpoint_b l).Chan.send (Bytes.create 10);
  Engine.run e;
  check Alcotest.int "a got 2" 2 !at_a;
  check Alcotest.int "b got 1" 1 !at_b

(* ---------- Medium ---------- *)

let test_medium_range_and_movement () =
  let e = Engine.create () in
  let rng = Prng.create 2 in
  let m = Medium.create e rng ~bit_rate:10_000_000. ~base_delay:0.001 in
  let bs = Medium.add_node m ~x:0. ~y:0. in
  let mob = Medium.add_node m ~x:50. ~y:0. in
  check (Alcotest.float 1e-9) "distance" 50. (Medium.distance bs mob);
  let down = Medium.channel m ~local:bs ~remote:mob ~range:100. ~edge_loss:0. () in
  let up = Medium.channel m ~local:mob ~remote:bs ~range:100. ~edge_loss:0. () in
  let got = ref 0 and carrier = ref [] in
  up.Chan.set_receiver (fun _ -> ());
  down.Chan.set_receiver (fun _ -> ());
  (* Receiving side of bs->mob transmissions is the mobile's channel. *)
  up.Chan.set_receiver (fun _ -> incr got);
  down.Chan.on_carrier (fun u -> carrier := u :: !carrier);
  Alcotest.(check bool) "in range" true (down.Chan.is_up ());
  down.Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "delivered in range" 1 !got;
  (* Move out of range: carrier watcher fires, frames die. *)
  Medium.set_position m mob ~x:500. ~y:0.;
  Alcotest.(check bool) "out of range" false (down.Chan.is_up ());
  check Alcotest.(list bool) "carrier down event" [ false ] !carrier;
  down.Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "not delivered" 1 !got;
  (* Come back. *)
  Medium.set_position m mob ~x:10. ~y:0.;
  check Alcotest.(list bool) "carrier up event" [ true; false ] !carrier;
  down.Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "delivered again" 2 !got

let test_medium_edge_loss_grows () =
  let e = Engine.create () in
  let rng = Prng.create 4 in
  let m = Medium.create e rng ~bit_rate:1_000_000_000. ~base_delay:0.00001 in
  let a = Medium.add_node m ~x:0. ~y:0. in
  let b = Medium.add_node m ~x:95. ~y:0. in
  let tx = Medium.channel m ~local:a ~remote:b ~range:100. ~edge_loss:0.5 () in
  let rx = Medium.channel m ~local:b ~remote:a ~range:100. ~edge_loss:0.5 () in
  let got = ref 0 in
  rx.Chan.set_receiver (fun _ -> incr got);
  for _ = 1 to 2000 do
    tx.Chan.send (Bytes.create 10)
  done;
  Engine.run e;
  (* At 95% of range with edge_loss 0.5 the loss is ~0.45. *)
  let rate = 1. -. (float_of_int !got /. 2000.) in
  Alcotest.(check bool) "edge loss ~45%" true (Float.abs (rate -. 0.45) < 0.05)

(* ---------- Trace ---------- *)

let test_trace () =
  let e = Engine.create () in
  let tr = Trace.create e in
  ignore (Engine.schedule e ~delay:1. (fun () -> Trace.record tr ~component:"x" ~event:"tick"));
  ignore (Engine.schedule e ~delay:3. (fun () -> Trace.record tr ~component:"x" ~event:"tick"));
  ignore (Engine.schedule e ~delay:4. (fun () -> Trace.record tr ~component:"y" ~event:"boom"));
  Engine.run e;
  check Alcotest.int "count" 2 (Trace.count tr ~component:"x" ~event:"tick");
  check Alcotest.int "filter" 1 (List.length (Trace.filter tr ~component:"y"));
  match Trace.largest_gap tr ~component:"x" ~event:"tick" with
  | Some (gap, start) ->
    check (Alcotest.float 1e-9) "gap" 2. gap;
    check (Alcotest.float 1e-9) "start" 1. start
  | None -> Alcotest.fail "expected a gap"

(* Duplicate timestamps must not make the widest-gap answer depend on
   record order: times are sorted and ties resolve to the earliest
   interval. *)
let test_trace_duplicate_gap () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let at d = ignore (Engine.schedule e ~delay:d (fun () -> Trace.record tr ~component:"x" ~event:"t")) in
  at 1.;
  at 1.;
  (* duplicate timestamp *)
  at 3.;
  at 5.;
  Engine.run e;
  (* gaps: 0 (the duplicate), 2 (1->3), 2 (3->5): tie resolves to the
     earliest interval, so start must be 1, not 3 *)
  (match Trace.largest_gap tr ~component:"x" ~event:"t" with
  | Some (gap, start) ->
    check (Alcotest.float 1e-9) "gap" 2. gap;
    check (Alcotest.float 1e-9) "earliest tied interval" 1. start
  | None -> Alcotest.fail "expected a gap");
  (* same answer through the offline report path *)
  let mk time =
    { Flight.time; component = "x"; kind = Flight.Pdu_recvd;
      flow = 0; rank = 0; seq = 0; size = 0; span = 0 }
  in
  match Trace_report.delivery_gap [ mk 3.; mk 1.; mk 5.; mk 1. ] with
  | Some (gap, start) ->
    check (Alcotest.float 1e-9) "report gap" 2. gap;
    check (Alcotest.float 1e-9) "report start" 1. start
  | None -> Alcotest.fail "expected a report gap"

(* Attaching turns on typed emission (engine timers included);
   detaching stops it while keeping buffered events readable. *)
let test_trace_attach_timer_events () =
  let e = Engine.create () in
  let tr = Trace.create e in
  check Alcotest.bool "off by default" false (Flight.enabled ());
  Trace.attach tr;
  check Alcotest.bool "attached" true (Trace.is_attached tr);
  ignore (Engine.schedule e ~delay:1. (fun () -> ()));
  ignore (Engine.schedule e ~delay:2. (fun () -> ()));
  Engine.run e;
  Trace.detach ();
  let is k ev = ev.Flight.kind = k in
  let evs = Trace.typed_events tr in
  check Alcotest.int "timers set" 2 (List.length (List.filter (is Flight.Timer_set) evs));
  check Alcotest.int "timers fired" 2 (List.length (List.filter (is Flight.Timer_fired) evs));
  let n = Trace.length tr in
  ignore (Engine.schedule e ~delay:1. (fun () -> ()));
  Engine.run e;
  check Alcotest.int "silent after detach" n (Trace.length tr);
  check Alcotest.bool "detached" false (Trace.is_attached tr)

let test_trace_probe () =
  let e = Engine.create () in
  let tr = Trace.create e in
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Trace.probe: period must be positive") (fun () ->
      Trace.probe tr ~name:"q" ~period:0. ~until:5. (fun () -> 0));
  Trace.attach tr;
  let v = ref 0 in
  Trace.probe tr ~name:"q" ~period:1. ~until:5. (fun () ->
      incr v;
      !v * 10);
  Engine.run e;
  Trace.detach ();
  let samples =
    List.filter_map
      (fun ev ->
        if ev.Flight.component = "q" && ev.Flight.kind = Flight.Custom "probe"
        then Some (ev.Flight.time, ev.Flight.size)
        else None)
      (Trace.typed_events tr)
  in
  (* fires at t = 1..5 inclusive, then stops (until reached) *)
  check
    Alcotest.(list (pair (float 1e-9) int))
    "periodic samples"
    [ (1., 10); (2., 20); (3., 30); (4., 40); (5., 50) ]
    samples

(* Link halves emit typed lifecycle events with per-direction
   components and drop reasons. *)
let test_trace_link_drop_reasons () =
  let e = Engine.create () in
  let rng = Prng.create 7 in
  let link =
    Link.create e rng ~bit_rate:8_000. ~delay:0.01 ~queue_capacity:1
      ~label:"lk" ()
  in
  let tr = Trace.create e in
  Trace.attach tr;
  let a = Link.endpoint_a link in
  (Link.endpoint_b link).Chan.set_receiver (fun _ -> ());
  a.Chan.send (Bytes.create 100);
  (* first frame serialises (100 ms at 8 kb/s) *)
  check Alcotest.int "queue depth" 1 (Link.queue_depth_a link);
  a.Chan.send (Bytes.create 100);
  (* capacity 1 -> tail drop *)
  Engine.run e;
  Link.set_up link false;
  a.Chan.send (Bytes.create 100);
  (* carrier down -> drop *)
  Engine.run e;
  Trace.detach ();
  let dropped r ev = ev.Flight.kind = Flight.Pdu_dropped r in
  let evs = List.filter (fun ev -> ev.Flight.component = "lk.ab") (Trace.typed_events tr) in
  check Alcotest.int "queue_full drop" 1
    (List.length (List.filter (dropped Flight.R_queue_full) evs));
  check Alcotest.int "link_down drop" 1
    (List.length (List.filter (dropped Flight.R_link_down) evs));
  check Alcotest.int "sent" 1
    (List.length (List.filter (fun ev -> ev.Flight.kind = Flight.Pdu_sent) evs));
  check Alcotest.int "recvd" 1
    (List.length (List.filter (fun ev -> ev.Flight.kind = Flight.Pdu_recvd) evs));
  match Trace_report.drop_breakdown (Trace.typed_events tr) with
  | [ (r1, 1); (r2, 1) ] ->
    check
      Alcotest.(slist string compare)
      "reasons" [ "link_down"; "queue_full" ] [ r1; r2 ]
  | other ->
    Alcotest.failf "unexpected drop breakdown (%d entries)" (List.length other)

let test_trace_jsonl_roundtrip () =
  let e = Engine.create () in
  let tr = Trace.create e in
  Trace.attach tr;
  ignore
    (Engine.schedule e ~delay:0.5 (fun () ->
         Flight.emit ~component:"efcp" ~flow:3 ~rank:1 ~seq:7 ~size:500
           ~span:(Flight.span_of ~flow:3 ~seq:7)
           (Flight.Pdu_dropped (Flight.R_other "weird"));
         Trace.record tr ~component:"legacy" ~event:"tick"));
  Engine.run e;
  Trace.detach ();
  let path = Filename.temp_file "rina_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save_jsonl tr path;
      match Trace.load_jsonl path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok evs ->
        check Alcotest.int "all lines back" (Trace.length tr) (List.length evs);
        check Alcotest.bool "events identical" true (evs = Trace.typed_events tr))

(* A corrupt line in a JSONL trace must fail cleanly (Error, not an
   exception) and name the file and line. *)
let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let test_trace_load_corrupt () =
  let path = Filename.temp_file "rina_trace_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            "{\"t\":1,\"c\":\"x\",\"k\":\"pdu_sent\"}\n\nnot json at all\n");
      (match Trace.load_jsonl path with
      | Ok _ -> Alcotest.fail "corrupt trace accepted"
      | Error msg ->
        check Alcotest.bool
          (Printf.sprintf "error %S names file:line" msg)
          true
          (has_sub msg (path ^ ":3:")));
      match Trace.fold_jsonl path ~init:0 ~f:(fun n _ -> n + 1) with
      | Ok _ -> Alcotest.fail "fold accepted corrupt trace"
      | Error msg ->
        check Alcotest.bool "fold error names file:line" true
          (has_sub msg (path ^ ":3:")))

(* The snapshot timer rides the engine wheel: with a telemetry registry
   attached, every interval records a Telemetry.snap and emits a
   Custom "snapshot" marker. *)
let test_trace_snapshots () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let tele = Rina_util.Telemetry.create () in
  Trace.attach ~telemetry:tele tr;
  Trace.snapshots tr ~interval:0.5 ~until:2.9;
  ignore
    (Engine.schedule e ~delay:1.05 (fun () ->
         Flight.emit ~component:"x" ~flow:1 ~seq:1 ~span:1 Flight.Pdu_sent));
  Engine.run e;
  Trace.detach ();
  let snaps = Rina_util.Telemetry.snapshots tele in
  check Alcotest.int "one snapshot per interval" 5 (List.length snaps);
  check Alcotest.int "marker events in trace" 5
    (Trace.count tr ~component:"trace" ~event:"snapshot");
  (* snapshots are interval deltas: exactly one interval saw the send *)
  check Alcotest.int "send landed in one interval" 1
    (List.length
       (List.filter (fun s -> s.Rina_util.Telemetry.sent > 0) snaps));
  Alcotest.check_raises "snapshots need telemetry"
    (Invalid_argument "Trace.snapshots: attach with ~telemetry before scheduling")
    (fun () ->
      let tr2 = Trace.create e in
      Trace.attach tr2;
      Fun.protect ~finally:Trace.detach (fun () ->
          Trace.snapshots tr2 ~interval:0.5 ~until:1.))

(* Streaming sink: the JSONL file written as events happen must be
   byte-identical to saving the buffered trace of the same run. *)
let test_trace_stream_sink_identical () =
  let scenario () =
    let e = Engine.create () in
    let rec tick i =
      if i <= 50 then begin
        Flight.emit ~component:"s" ~flow:2 ~seq:i ~size:100
          ~span:(Flight.span_of ~flow:2 ~seq:i)
          (if i mod 7 = 0 then Flight.Pdu_dropped Flight.R_loss
           else Flight.Pdu_sent);
        ignore (Engine.schedule e ~delay:0.01 (fun () -> tick (i + 1)))
      end
    in
    ignore (Engine.schedule e ~delay:0. (fun () -> tick 1));
    e
  in
  let buf_path = Filename.temp_file "rina_trace_buf" ".jsonl" in
  let stream_path = Filename.temp_file "rina_trace_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove buf_path;
      Sys.remove stream_path)
    (fun () ->
      (let e = scenario () in
       let tr = Trace.create e in
       Trace.attach ~sample_rate:0.5 tr;
       Engine.run e;
       Trace.close tr;
       Trace.save_jsonl tr buf_path);
      (let e = scenario () in
       let tr = Trace.create e in
       Trace.attach ~sample_rate:0.5 ~stream:stream_path tr;
       Engine.run e;
       Trace.close tr);
      let read p = In_channel.with_open_text p In_channel.input_all in
      check Alcotest.bool "streamed file byte-identical to buffered save"
        true
        (read buf_path = read stream_path);
      match Trace.load_jsonl stream_path with
      | Error msg -> Alcotest.failf "streamed file unreadable: %s" msg
      | Ok evs ->
        check Alcotest.bool "sampled: fewer than every event" true
          (List.length evs < 52
          && List.length evs > 2 (* meta marker + some kept spans *)))

(* A sampled trace carries its keep rate as a marker event; offline
   analysis reads it back and scales sampled counts to population
   estimates. *)
let test_trace_sample_ppm_marker () =
  let e = Engine.create () in
  let tr = Trace.create e in
  Trace.attach ~sample_rate:0.25 tr;
  Flight.emit ~component:"x" ~flow:1 ~seq:1 ~size:10 (Flight.Custom "evt");
  Trace.close tr;
  (match Trace_report.sample_ppm (Trace.typed_events tr) with
  | Some ppm -> check Alcotest.int "sample_ppm read back" 250_000 ppm
  | None -> Alcotest.fail "sampled trace is missing the meta:sample_ppm marker");
  check Alcotest.int "scale_count inverts the keep rate" 400
    (Trace_report.scale_count ~ppm:250_000 100);
  (* unsampled traces carry no marker and scale by 1 *)
  let e2 = Engine.create () in
  let tr2 = Trace.create e2 in
  Trace.attach tr2;
  Trace.close tr2;
  check Alcotest.bool "full trace has no marker" true
    (Trace_report.sample_ppm (Trace.typed_events tr2) = None);
  check Alcotest.int "full trace scales by 1" 100
    (Trace_report.scale_count ~ppm:1_000_000 100)

(* Offline analysis must tolerate out-of-order input: the receive event
   arriving before the send must still join into one span. *)
let test_trace_span_join_out_of_order () =
  let span = Flight.span_of ~flow:9 ~seq:1 in
  let mk time component kind =
    { Flight.time; component; kind; flow = 9; rank = 0; seq = 1; size = 100; span }
  in
  let events =
    [
      mk 2.5 "efcp" Flight.Pdu_recvd;
      (* out of order: delivery first *)
      mk 1.0 "efcp" Flight.Pdu_sent;
      mk 1.5 "rmt:d@1" Flight.Retransmit;
    ]
  in
  (match Trace_report.latency_by_flow events with
  | [ (9, st) ] ->
    check Alcotest.int "one sample" 1 (Rina_util.Stats.count st);
    (* earliest send (1.0) to earliest delivery (2.5), ignoring the
       retransmitted copy *)
    check (Alcotest.float 1e-9) "latency" 1.5 (Rina_util.Stats.mean st)
  | _ -> Alcotest.fail "expected exactly flow 9");
  match Trace_report.span_tree events with
  | [ (s, steps) ] ->
    check Alcotest.bool "span id" true (s = span);
    check
      Alcotest.(list (pair string string))
      "time-sorted steps"
      [ ("efcp", "pdu_sent"); ("rmt:d@1", "retransmit"); ("efcp", "pdu_recvd") ]
      (List.map (fun (_, c, k) -> (c, k)) steps)
  | other -> Alcotest.failf "expected one span, got %d" (List.length other)

(* End-to-end span joining over a stacked (2-DIF) arrangement with a
   relay in the lower DIF: one SDU sent on the upper flow must produce
   an upper-DIF span (efcp -> rmt -> rmt -> efcp, rank 1) and a
   lower-DIF span that crosses the relay (efcp -> rmt at each of the
   three members -> efcp, rank 0). *)
let test_trace_relay_span_tree () =
  let e = Engine.create () in
  let rng = Prng.create 42 in
  let lower = Dif.create e "low" in
  let la = Dif.add_member lower ~name:"la" () in
  let lr = Dif.add_member lower ~name:"lr" () in
  let lb = Dif.add_member lower ~name:"lb" () in
  let mk_link () = Link.create e rng ~bit_rate:10_000_000. ~delay:0.001 () in
  let l1 = mk_link () and l2 = mk_link () in
  (* a line: la - lr - lb, so la<->lb traffic relays through lr *)
  Dif.connect lower la lr (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect lower lr lb (Link.endpoint_a l2, Link.endpoint_b l2);
  Dif.run_until_converged lower ();
  let upper = Dif.create e ~rank:1 "up" in
  let ua = Dif.add_member upper ~name:"ua" () in
  let ub = Dif.add_member upper ~name:"ub" () in
  Dif.stack_connect ~lower_a:la ~lower_b:lb ~upper_a:ua ~upper_b:ub ();
  Dif.run_until_converged upper ();
  let received = ref 0 in
  Ipcp.register_app ub (Types.apn "server") ~on_flow:(fun fl ->
      fl.Ipcp.set_on_receive (fun _ -> incr received));
  let tr = Trace.create e in
  Trace.attach tr;
  Ipcp.allocate_flow ua ~src:(Types.apn "client") ~dst:(Types.apn "server")
    ~qos_id:0
    ~on_result:(fun r ->
      match r with
      | Ok fl -> fl.Ipcp.send (Bytes.create 64)
      | Error msg -> Alcotest.failf "allocate failed: %s" msg);
  Engine.run ~until:(Engine.now e +. 10.) e;
  Trace.detach ();
  check Alcotest.bool "SDU delivered" true (!received >= 1);
  let evs = Trace.typed_events tr in
  (* group the PDU-lifecycle events per span, in time order *)
  let shape_of (_, steps) =
    List.map (fun (_, c, k) -> (c, k)) steps
  in
  let shapes = List.map shape_of (Trace_report.span_tree ~max_spans:max_int evs) in
  let is_rmt prefix c =
    String.length c > String.length prefix && String.sub c 0 (String.length prefix) = prefix
  in
  let upper_shape shape =
    match shape with
    | [ ("efcp", "pdu_sent"); (r1, "pdu_sent"); (r2, "pdu_recvd"); ("efcp", "pdu_recvd") ]
      when is_rmt "rmt:up@" r1 && is_rmt "rmt:up@" r2 && r1 <> r2 -> true
    | _ -> false
  in
  let lower_relay_shape shape =
    match shape with
    | [
        ("efcp", "pdu_sent");
        (r1, "pdu_sent");
        (r2, "pdu_sent");
        (* the relay retransmits the PDU unchanged: same span *)
        (r3, "pdu_recvd");
        ("efcp", "pdu_recvd");
      ]
      when is_rmt "rmt:low@" r1 && is_rmt "rmt:low@" r2 && is_rmt "rmt:low@" r3
           && r1 <> r2 && r2 <> r3 -> true
    | _ -> false
  in
  check Alcotest.bool "upper-DIF span (no relay)" true
    (List.exists upper_shape shapes);
  check Alcotest.bool "lower-DIF span crosses the relay" true
    (List.exists lower_relay_shape shapes);
  (* rank stamping: efcp/rmt events of the upper DIF carry rank 1,
     lower-DIF ones rank 0 *)
  List.iter
    (fun ev ->
      if is_rmt "rmt:up@" ev.Flight.component then
        check Alcotest.int "upper rank" 1 ev.Flight.rank
      else if is_rmt "rmt:low@" ev.Flight.component then
        check Alcotest.int "lower rank" 0 ev.Flight.rank)
    evs

(* ---------- Fault injection ---------- *)

let test_fault_events_sorted_and_replayable () =
  let build () =
    let p = Fault.create () in
    Fault.inject p ~at:5. ~label:"late" (fun () -> ());
    Fault.window p ~at:1. ~until:3. ~label:"win"
      ~apply:(fun () -> ())
      ~heal:(fun () -> ());
    Fault.heal_at p ~at:2. ~label:"late" (fun () -> ());
    p
  in
  let evs = Fault.events (build ()) in
  check
    Alcotest.(list (pair (float 1e-9) string))
    "sorted schedule"
    [ (1., "fault:win"); (2., "heal:late"); (3., "heal:win"); (5., "fault:late") ]
    evs;
  check
    Alcotest.(list (pair (float 1e-9) string))
    "identical plans compare equal" evs
    (Fault.events (build ()))

let test_fault_window_rejects_empty () =
  let p = Fault.create () in
  Alcotest.check_raises "until <= at"
    (Invalid_argument "Fault.window: until must be after at") (fun () ->
      Fault.window p ~at:2. ~until:2. ~label:"x"
        ~apply:(fun () -> ())
        ~heal:(fun () -> ()))

let test_fault_arm_fires_on_schedule () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let log = ref [] in
  let p = Fault.create () in
  Fault.window p ~at:1. ~until:2. ~label:"w"
    ~apply:(fun () -> log := (Engine.now e, "apply") :: !log)
    ~heal:(fun () -> log := (Engine.now e, "heal") :: !log);
  Fault.inject p ~at:0.5 ~label:"one-shot" (fun () ->
      log := (Engine.now e, "shot") :: !log);
  Fault.arm p e;
  Trace.attach tr;
  Engine.run e;
  Trace.detach ();
  check
    Alcotest.(list (pair (float 1e-9) string))
    "actions at plan times"
    [ (0.5, "shot"); (1., "apply"); (2., "heal") ]
    (List.rev !log);
  let customs =
    List.filter_map
      (fun (ev : Flight.event) ->
        match ev.Flight.kind with
        | Flight.Custom s when ev.Flight.component = "fault" ->
          Some (ev.Flight.time, s)
        | _ -> None)
      (Trace.typed_events tr)
  in
  check
    Alcotest.(list (pair (float 1e-9) string))
    "flight events mirror the schedule"
    [ (0.5, "fault:one-shot"); (1., "fault:w"); (2., "heal:w") ]
    customs

let test_fault_blackhole_conservation () =
  Sanitizer.enable ();
  let e = Engine.create () in
  let rng = Prng.create 3 in
  let l =
    Link.create e rng ~bit_rate:1_000_000. ~delay:0.001 ~label:"bh" ()
  in
  let tr = Trace.create e in
  Trace.attach tr;
  let received = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  let p = Fault.create () in
  Fault.link_blackhole p ~at:0.05 ~until:0.15 l;
  Fault.arm p e;
  (* one frame per 10 ms for 200 ms: ~10 land inside the window *)
  for i = 0 to 19 do
    ignore
      (Engine.schedule_at e
         ~time:(0.01 *. float_of_int i)
         (fun () -> (Link.endpoint_a l).Chan.send (Bytes.create 64)))
  done;
  Engine.run e;
  Trace.detach ();
  let c = Link.conservation_a l in
  Alcotest.(check bool) "some frames blackholed" true (c.Link.blackholed > 0);
  check Alcotest.int "conservation holds" c.Link.injected
    (c.Link.delivered + c.Link.dropped + c.Link.blackholed);
  check Alcotest.int "delivered = received" c.Link.delivered !received;
  check (Alcotest.list Alcotest.string) "audit clean" []
    (List.map
       (fun (d : Rina_check.Diag.t) -> d.Rina_check.Diag.code)
       (Sanitizer.audit_link l));
  Sanitizer.disable ();
  let bh_drops =
    List.filter
      (fun (ev : Flight.event) ->
        ev.Flight.kind = Flight.Pdu_dropped Flight.R_blackhole)
      (Trace.typed_events tr)
  in
  check Alcotest.int "R_blackhole drops traced" c.Link.blackholed
    (List.length bh_drops)

let test_fault_rejects_non_finite () =
  let p = Fault.create () in
  Alcotest.check_raises "inject nan"
    (Invalid_argument "Fault.inject: time must be finite") (fun () ->
      Fault.inject p ~at:Float.nan ~label:"x" (fun () -> ()));
  Alcotest.check_raises "heal_at infinite"
    (Invalid_argument "Fault.heal_at: time must be finite") (fun () ->
      Fault.heal_at p ~at:Float.infinity ~label:"x" (fun () -> ()));
  Alcotest.check_raises "window nan start"
    (Invalid_argument "Fault.window: time must be finite") (fun () ->
      Fault.window p ~at:Float.nan ~until:2. ~label:"x"
        ~apply:(fun () -> ())
        ~heal:(fun () -> ()));
  Alcotest.check_raises "window infinite end"
    (Invalid_argument "Fault.window: time must be finite") (fun () ->
      Fault.window p ~at:1. ~until:Float.neg_infinity ~label:"x"
        ~apply:(fun () -> ())
        ~heal:(fun () -> ()));
  check Alcotest.(list (pair (float 1e-9) string)) "plan untouched" []
    (Fault.events p)

(* ---------- Mangle ---------- *)

let test_mangle_make_validation () =
  Alcotest.check_raises "corrupt out of range"
    (Invalid_argument "Mangle.make: corrupt must be in [0, 1]") (fun () ->
      ignore (Mangle.make ~corrupt:1.5 ()));
  Alcotest.check_raises "duplicate nan"
    (Invalid_argument "Mangle.make: duplicate must be in [0, 1]") (fun () ->
      ignore (Mangle.make ~duplicate:Float.nan ()));
  Alcotest.check_raises "dup_delay zero"
    (Invalid_argument "Mangle.make: dup_delay must be positive") (fun () ->
      ignore (Mangle.make ~dup_delay:0. ()));
  Alcotest.check_raises "max_displacement zero"
    (Invalid_argument "Mangle.make: max_displacement must be positive")
    (fun () -> ignore (Mangle.make ~max_displacement:0 ()));
  Alcotest.(check bool) "none is none" true (Mangle.is_none Mangle.none);
  Alcotest.(check bool) "corrupting spec is not none" false
    (Mangle.is_none (Mangle.make ~corrupt:0.1 ()))

let test_mangle_flip_bit () =
  let zeros = Bytes.make 8 '\x00' in
  let flipped = Mangle.flip_bit zeros 13 in
  Alcotest.(check bool) "copy, not in place" true
    (Bytes.equal zeros (Bytes.make 8 '\x00'));
  let popcount b =
    let n = ref 0 in
    Bytes.iter
      (fun c ->
        let v = ref (Char.code c) in
        while !v <> 0 do
          n := !n + (!v land 1);
          v := !v lsr 1
        done)
      b;
    !n
  in
  check Alcotest.int "exactly one bit differs" 1 (popcount flipped);
  Alcotest.(check bool) "double flip restores" true
    (Bytes.equal zeros (Mangle.flip_bit flipped 13));
  Alcotest.(check bool) "bit index wraps" true
    (Bytes.equal (Mangle.flip_bit zeros 64) (Mangle.flip_bit zeros 0));
  let empty = Bytes.create 0 in
  Alcotest.(check bool) "empty frame unchanged" true
    (Bytes.equal empty (Mangle.flip_bit empty 3))

let test_mangle_decide_deterministic () =
  let spec =
    Mangle.make ~corrupt:0.3 ~duplicate:0.2 ~reorder:0.4 ~max_displacement:6
      ~delay_spike:0.1 ()
  in
  let run seed =
    let st = Mangle.make_state spec in
    let rng = Prng.create seed in
    List.init 200 (fun _ ->
        let d = Mangle.decide st rng ~frame_bits:512 in
        ( d.Mangle.corrupt_bit,
          d.Mangle.dup,
          d.Mangle.spike_by,
          d.Mangle.displacement ))
  in
  Alcotest.(check bool) "same seed, same schedule" true (run 42 = run 42);
  Alcotest.(check bool) "different seed, different schedule" true
    (run 42 <> run 43);
  Alcotest.(check bool) "displacement bounded by max" true
    (List.for_all (fun (_, _, _, disp) -> disp >= 0 && disp <= 6) (run 42));
  Alcotest.(check bool) "something actually mangled" true
    (List.exists (fun (bit, _, _, _) -> bit >= 0) (run 42))

(* Conservation under each mangle mode: corruption perturbs payloads but
   never frame counts; duplication adds one injected per copy so the
   identity still balances; reordering holds frames back but releases
   every one of them. *)
let mangle_pump spec n =
  Sanitizer.enable ();
  let e = Engine.create () in
  let rng = Prng.create 7 in
  let l =
    Link.create e rng ~bit_rate:1_000_000. ~delay:0.001 ~label:"mangled"
      ~mangle:spec ()
  in
  let received = ref [] in
  (Link.endpoint_b l).Chan.set_receiver (fun frame ->
      received := frame :: !received);
  for i = 0 to n - 1 do
    ignore
      (Engine.schedule_at e
         ~time:(0.002 *. float_of_int i)
         (fun () ->
           let frame = Bytes.make 64 '\x00' in
           Bytes.set_int32_be frame 0 (Int32.of_int i);
           (Link.endpoint_a l).Chan.send frame))
  done;
  Engine.run e;
  Sanitizer.disable ();
  (l, List.rev !received)

let test_link_mangle_corrupt_conservation () =
  let l, received = mangle_pump (Mangle.make ~corrupt:1.0 ()) 50 in
  let c = Link.conservation_a l in
  check Alcotest.int "all frames delivered" 50 (List.length received);
  check Alcotest.int "conservation holds" c.Link.injected
    (c.Link.delivered + c.Link.dropped + c.Link.blackholed);
  check Alcotest.int "every frame counted corrupt" 50
    (Rina_util.Metrics.get (Link.stats_a l) "mangle_corrupt");
  (* Reconstruct each original and require exactly one flipped bit. *)
  let one_bit_off frame =
    let seq = Int32.to_int (Bytes.get_int32_be frame 0) in
    let original = Bytes.make 64 '\x00' in
    Bytes.set_int32_be original 0 (Int32.of_int seq);
    let diff = ref 0 in
    Bytes.iteri
      (fun i c ->
        let v = ref (Char.code c lxor Char.code (Bytes.get original i)) in
        while !v <> 0 do
          diff := !diff + (!v land 1);
          v := !v lsr 1
        done)
      frame;
    !diff <= 1
  in
  (* A flip inside the seq field yields 0 visible diffs (the original is
     reconstructed from the corrupted seq); anywhere else exactly 1. *)
  Alcotest.(check bool) "frames differ from originals by at most one bit" true
    (List.for_all one_bit_off received)

let test_link_mangle_duplicate_conservation () =
  let l, received = mangle_pump (Mangle.make ~duplicate:1.0 ()) 40 in
  let c = Link.conservation_a l in
  check Alcotest.int "each frame arrives twice" 80 (List.length received);
  check Alcotest.int "copies counted as injected" 80 c.Link.injected;
  check Alcotest.int "conservation holds" c.Link.injected
    (c.Link.delivered + c.Link.dropped + c.Link.blackholed);
  check Alcotest.int "dup metric" 40
    (Rina_util.Metrics.get (Link.stats_a l) "mangle_dup")

let test_link_mangle_reorder_conservation () =
  let l, received =
    mangle_pump (Mangle.make ~reorder:0.5 ~max_displacement:4 ()) 200
  in
  let c = Link.conservation_a l in
  check Alcotest.int "nothing lost to holdback" 200 (List.length received);
  check Alcotest.int "conservation holds" c.Link.injected
    (c.Link.delivered + c.Link.dropped + c.Link.blackholed);
  Alcotest.(check bool) "some frames held back" true
    (Rina_util.Metrics.get (Link.stats_a l) "mangle_reorder" > 0);
  let seqs =
    List.map (fun frame -> Int32.to_int (Bytes.get_int32_be frame 0)) received
  in
  Alcotest.(check bool) "delivery order actually perturbed" true
    (seqs <> List.init 200 Fun.id);
  Alcotest.(check bool) "every frame delivered exactly once" true
    (List.sort compare seqs = List.init 200 Fun.id)

(* Regression: frames the mangler is holding back for reorder must not
   outlive a crash of the endpoint they are heading for.  Before the
   fix, the max-hold flush redelivered them after the endpoint had
   restarted — to a process with a fresh address that never saw the
   original flow.  Now [Link.crash_endpoint] voids the holds and they
   drop with the typed [R_endpoint_crash] reason. *)
let test_link_holdback_vs_endpoint_crash () =
  Sanitizer.enable ();
  let e = Engine.create () in
  let rng = Prng.create 11 in
  (* Every frame is held, and needs more overtakers than will ever
     come, so only the max-hold flush (or the crash) can resolve it. *)
  let spec = Mangle.make ~reorder:1.0 ~max_displacement:64 ~max_hold:0.2 () in
  let l =
    Link.create e rng ~bit_rate:1_000_000. ~delay:0.001 ~label:"crashy"
      ~mangle:spec ()
  in
  let tr = Rina_sim.Trace.create e in
  Rina_sim.Trace.attach tr;
  let received = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  for i = 0 to 9 do
    ignore
      (Engine.schedule_at e
         ~time:(0.002 *. float_of_int i)
         (fun () -> (Link.endpoint_a l).Chan.send (Bytes.make 64 'h')))
  done;
  (* Crash B while every frame is still held back (holds flush at
     ~0.2 s); a restarted process would re-arm the same receiver. *)
  ignore (Engine.schedule_at e ~time:0.05 (fun () -> Link.crash_endpoint l `B));
  Engine.run e;
  Rina_sim.Trace.detach ();
  Sanitizer.disable ();
  let c = Link.conservation_a l in
  check Alcotest.int "nothing delivered after the crash" 0 !received;
  check Alcotest.int "all ten died as crash drops" 10
    (Rina_util.Metrics.get (Link.stats_a l) "dropped_crash");
  check Alcotest.int "conservation still balances" c.Link.injected
    (c.Link.delivered + c.Link.dropped + c.Link.blackholed);
  let crash_drops =
    List.length
      (List.filter
         (fun (ev : Flight.event) ->
           match ev.Flight.kind with
           | Flight.Pdu_dropped Flight.R_endpoint_crash -> true
           | _ -> false)
         (Rina_sim.Trace.typed_events tr))
  in
  check Alcotest.int "typed drop reason in the trace" 10 crash_drops

(* The crash voids only the direction toward the dead endpoint: the
   survivor keeps receiving what the (pre-crash) peer had in flight. *)
let test_link_crash_is_directional () =
  let e = Engine.create () in
  let rng = Prng.create 12 in
  let l = Link.create e rng ~bit_rate:1_000_000. ~delay:0.01 () in
  let at_a = ref 0 and at_b = ref 0 in
  (Link.endpoint_a l).Chan.set_receiver (fun _ -> incr at_a);
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr at_b);
  (* Both directions have a frame in flight when B dies. *)
  ignore
    (Engine.schedule_at e ~time:0.001 (fun () ->
         (Link.endpoint_a l).Chan.send (Bytes.make 32 'x');
         (Link.endpoint_b l).Chan.send (Bytes.make 32 'y')));
  ignore (Engine.schedule_at e ~time:0.005 (fun () -> Link.crash_endpoint l `B));
  (* After the crash the link itself still works for new A-bound frames. *)
  ignore
    (Engine.schedule_at e ~time:0.02 (fun () ->
         (Link.endpoint_b l).Chan.send (Bytes.make 32 'z')));
  Engine.run e;
  check Alcotest.int "survivor got both frames toward it" 2 !at_a;
  check Alcotest.int "crashed side got nothing" 0 !at_b

(* End-to-end property: whatever seeded mangle schedule the link runs
   (corruption + duplication + reordering + delay spikes), a reliable
   flow through a DIF still delivers each SDU exactly once, in order —
   and a same-seed replay produces a byte-identical flight trace. *)
let run_mangled_transfer seed n =
  let srng = Prng.create ((seed * 7) + 1) in
  let spec =
    Mangle.make
      ~corrupt:(0.005 +. Prng.float srng 0.03)
      ~duplicate:(0.005 +. Prng.float srng 0.03)
      ~reorder:(0.01 +. Prng.float srng 0.08)
      ~max_displacement:(1 + Prng.int srng 8)
      ~delay_spike:(Prng.float srng 0.04)
      ()
  in
  let e = Engine.create () in
  let rng = Prng.create seed in
  let dif = Dif.create e "adv" in
  let a = Dif.add_member dif ~name:"a" () in
  let b = Dif.add_member dif ~name:"b" () in
  let l = Link.create e rng ~bit_rate:10_000_000. ~delay:0.001 () in
  Dif.connect dif a b (Link.endpoint_a l, Link.endpoint_b l);
  Dif.run_until_converged dif ();
  let tr = Trace.create e in
  Trace.attach tr;
  let delivered = ref [] in
  Ipcp.register_app b (Types.apn "sink") ~on_flow:(fun fl ->
      fl.Ipcp.set_on_receive (fun sdu ->
          delivered := Int32.to_int (Bytes.get_int32_be sdu 0) :: !delivered));
  Ipcp.allocate_flow a ~src:(Types.apn "src") ~dst:(Types.apn "sink") ~qos_id:1
    ~on_result:(fun r ->
      match r with
      | Ok fl ->
        (* The control plane is up; now turn the channel hostile and
           push the transfer through it. *)
        Link.set_mangle l spec;
        for i = 0 to n - 1 do
          let sdu = Bytes.make 32 'q' in
          Bytes.set_int32_be sdu 0 (Int32.of_int i);
          fl.Ipcp.send sdu
        done
      | Error msg -> Alcotest.failf "allocate failed: %s" msg);
  Engine.run ~until:(Engine.now e +. 60.) e;
  Trace.detach ();
  (List.rev !delivered, Flight.encode_events (Trace.typed_events tr))

let prop_mangled_exactly_once_and_replayable =
  QCheck.Test.make ~name:"mangled link: exactly-once delivery + exact replay"
    ~count:12
    QCheck.(pair (int_range 0 100_000) (int_range 20 60))
    (fun (seed, n) ->
      let delivered, trace = run_mangled_transfer seed n in
      let delivered', trace' = run_mangled_transfer seed n in
      delivered = List.init n Fun.id
      && delivered' = delivered
      && Bytes.equal trace trace')

(* ---------- multipath: dual-homed failover ---------- *)

module Policy = Rina_core.Policy

(* Two members joined by two parallel links (a dual-homed adjacency),
   multipath monitor armed.  Mid-transfer one link loses carrier: the
   stranded PDUs must be re-striped onto the survivor within a probe
   interval (no dead-peer wait), delivery stays exactly-once in order,
   and once the link returns the path is probed back to Up. *)
let test_multipath_failover_and_recovery () =
  let e = Engine.create () in
  let rng = Prng.create 42 in
  let policy =
    {
      Rina_core.Policy.default with
      Policy.multipath =
        {
          Policy.default_multipath with
          Policy.probe_interval = 0.05;
          reprobe_backoff = 0.1;
        };
    }
  in
  let dif = Dif.create e ~policy "mp" in
  let a = Dif.add_member dif ~name:"a" () in
  let b = Dif.add_member dif ~name:"b" () in
  let l1 = Link.create e rng ~bit_rate:10_000_000. ~delay:0.001 ~label:"p1" () in
  let l2 = Link.create e rng ~bit_rate:10_000_000. ~delay:0.001 ~label:"p2" () in
  Dif.connect dif a b (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect dif a b (Link.endpoint_a l2, Link.endpoint_b l2);
  Dif.run_until_converged dif ();
  let delivered = ref [] in
  Ipcp.register_app b (Types.apn "sink") ~on_flow:(fun fl ->
      fl.Ipcp.set_on_receive (fun sdu ->
          delivered := Int32.to_int (Bytes.get_int32_be sdu 0) :: !delivered));
  let n = 60 in
  Ipcp.allocate_flow a ~src:(Types.apn "src") ~dst:(Types.apn "sink") ~qos_id:1
    ~on_result:(fun r ->
      match r with
      | Ok fl ->
        let t0 = Engine.now e in
        for i = 0 to n - 1 do
          ignore
            (Engine.schedule_at e
               ~time:(t0 +. (0.01 *. float_of_int i))
               (fun () ->
                 let sdu = Bytes.make 32 'm' in
                 Bytes.set_int32_be sdu 0 (Int32.of_int i);
                 fl.Ipcp.send sdu))
        done;
        (* kill one member path mid-stream, revive it later *)
        ignore
          (Engine.schedule_at e ~time:(t0 +. 0.15) (fun () ->
               Link.set_up l1 false));
        ignore
          (Engine.schedule_at e ~time:(t0 +. 0.40) (fun () ->
               Link.set_up l1 true))
      | Error msg -> Alcotest.failf "allocate failed: %s" msg);
  Engine.run ~until:(Engine.now e +. 10.) e;
  check Alcotest.(list int) "exactly once, in order" (List.init n Fun.id)
    (List.rev !delivered);
  let am = Ipcp.metrics a in
  Alcotest.(check bool) "sender ran fast failover" true
    (Rina_util.Metrics.get am "failovers" >= 1);
  Alcotest.(check bool) "path went down" true
    (Rina_util.Metrics.get am "path_down" >= 1);
  Alcotest.(check bool) "path probed back up" true
    (Rina_util.Metrics.get am "path_up" >= 1);
  (* both paths healthy again at the end *)
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "healthy at end: %s" line)
        true
        (contains_sub line "=up"))
    (Ipcp.path_health a);
  Alcotest.(check bool) "striping used both ports before the kill" true
    (Rina_util.Metrics.get (Ipcp.rmt_metrics a) "sent_port1" > 0
    && Rina_util.Metrics.get (Ipcp.rmt_metrics a) "sent_port2" > 0)

(* ---------- sharded engine: cross-shard delivery order ---------- *)

module Sharded = Rina_sim.Sharded

(* A fleet of [shards] engines linked in a full mesh of cross-shard
   channels.  Each shard fires a Prng-drawn schedule of sends towards
   random peers; every frame carries (source shard, per-pair counter),
   numbered inside the engine events so the numbering follows
   execution order on the source shard.  Returns, per destination
   shard, the delivery log [(arrival time, source shard, counter)] in
   execution order.

   [chunks] splits the run into that many [run ~until] increments and
   [domains] picks the worker count — by the determinism contract,
   neither may change a single recorded entry. *)
let run_cross_traffic ~seed ~shards ~chunks ~domains =
  let lookahead = 0.01 in
  let horizon = 1.0 in
  let t = Sharded.create ~shards ~lookahead () in
  let rng = Prng.create seed in
  let send = Hashtbl.create 16 in
  let logs = Array.init shards (fun _ -> ref []) in
  (* an endpoint on shard [on_shard] receives the reverse direction *)
  let attach on_shard (chan : Chan.t) =
    chan.Chan.set_receiver (fun frame ->
        let src = Char.code (Bytes.get frame 0) in
        let k = Int32.to_int (Bytes.get_int32_be frame 1) in
        logs.(on_shard) :=
          (Engine.now (Sharded.engine t on_shard), src, k)
          :: !(logs.(on_shard)))
  in
  for a = 0 to shards - 1 do
    for b = a + 1 to shards - 1 do
      let delay = lookahead *. (1. +. Prng.uniform_in rng 0. 3.) in
      let ab, ba =
        Sharded.cross_link t ~queue_capacity:4096 ~src:a ~dst:b
          ~bit_rate:1e9 ~delay ()
      in
      Hashtbl.replace send (a, b) ab.Chan.send;
      Hashtbl.replace send (b, a) ba.Chan.send;
      attach a ab;
      attach b ba
    done
  done;
  let counters = Hashtbl.create 16 in
  for src = 0 to shards - 1 do
    let e = Sharded.engine t src in
    let n_sends = 20 + Prng.int rng 60 in
    for _ = 1 to n_sends do
      let at = Prng.uniform_in rng 0.001 (0.9 *. horizon) in
      let dst = (src + 1 + Prng.int rng (shards - 1)) mod shards in
      let f : bytes -> unit = Hashtbl.find send (src, dst) in
      ignore
        (Engine.schedule_at e ~time:at (fun () ->
             let key = (src, dst) in
             let r =
               match Hashtbl.find_opt counters key with
               | Some r -> r
               | None ->
                 let r = ref (-1) in
                 Hashtbl.replace counters key r;
                 r
             in
             incr r;
             let frame = Bytes.create 5 in
             Bytes.set frame 0 (Char.chr src);
             Bytes.set_int32_be frame 1 (Int32.of_int !r);
             f frame))
    done
  done;
  let step = horizon /. float_of_int chunks in
  for c = 1 to chunks do
    Sharded.run ~domains t ~until:(step *. float_of_int c)
  done;
  Array.map (fun l -> List.rev !l) logs

(* (time, src shard, per-pair seq) is the cross-shard tie-break: every
   delivery log must be lexicographically sorted by it, and within one
   source the counters arrive gap-free in send order. *)
let log_well_ordered log =
  let rec ordered = function
    | (t1, s1, k1) :: ((t2, s2, k2) :: _ as rest) ->
      (t1 < t2 || (t1 = t2 && (s1 < s2 || (s1 = s2 && k1 < k2))))
      && ordered rest
    | _ -> true
  in
  ordered log

let prop_sharded_delivery_order =
  QCheck.Test.make
    ~name:"sharded: (time, shard, seq) delivery order, any interleaving"
    ~count:8
    QCheck.(pair (int_range 0 1_000_000) (int_range 2 4))
    (fun (seed, shards) ->
      let base = run_cross_traffic ~seed ~shards ~chunks:1 ~domains:1 in
      let chunked = run_cross_traffic ~seed ~shards ~chunks:7 ~domains:1 in
      let par =
        run_cross_traffic ~seed ~shards ~chunks:3 ~domains:(min shards 4)
      in
      let per_src_in_order log =
        let last = Hashtbl.create 8 in
        List.for_all
          (fun (_, s, k) ->
            let prev =
              match Hashtbl.find_opt last s with Some p -> p | None -> -1
            in
            Hashtbl.replace last s k;
            k = prev + 1)
          log
      in
      Array.for_all log_well_ordered base
      && Array.for_all per_src_in_order base
      && Array.exists (fun l -> l <> []) base
      && base = chunked && base = par)

(* ---------- multipath x sharded: failover determinism ---------- *)

(* A dual-homed segment inside shard 0 (a ==2 links== r) feeding a
   cross-shard hop r -> b on shard 1 (cross-links are ideal, so the
   faulted member path must be shard-local).  A seeded fault window
   downs one member link mid-transfer and revives it.  The reliable
   flow must deliver exactly-once in order, and the delivery log —
   arrival time and payload — must be identical whether the fleet runs
   on one domain or two: the failover machinery (probe timers, WRR
   striping, re-striping of stranded PDUs) sits inside the determinism
   contract. *)
let run_sharded_failover_trial ~seed ~kill_at ~kill_for ~domains =
  let lookahead = 0.005 in
  let sh = Sharded.create ~shards:2 ~lookahead () in
  let e0 = Sharded.engine sh 0 and e1 = Sharded.engine sh 1 in
  let rng = Prng.create seed in
  let policy =
    {
      Rina_core.Policy.default with
      Policy.multipath =
        {
          Policy.default_multipath with
          Policy.probe_interval = 0.05;
          reprobe_backoff = 0.1;
        };
    }
  in
  let d0 = Dif.create e0 ~policy "mpsh" in
  let d1 = Dif.create e1 ~policy "mpsh" in
  let a = Dif.add_member d0 ~bootstrap:true ~name:"a" () in
  let r = Dif.add_member d0 ~bootstrap:false ~name:"r" () in
  let b = Dif.add_member d1 ~bootstrap:false ~name:"b" () in
  let l1 = Link.create e0 rng ~bit_rate:10_000_000. ~delay:0.001 ~label:"m1" () in
  let l2 = Link.create e0 rng ~bit_rate:10_000_000. ~delay:0.001 ~label:"m2" () in
  Dif.connect d0 a r (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect d0 a r (Link.endpoint_a l2, Link.endpoint_b l2);
  let er, eb =
    Sharded.cross_link sh ~src:0 ~dst:1 ~bit_rate:10_000_000. ~delay:lookahead
      ~label:"x" ()
  in
  ignore (Ipcp.bind_port r er);
  ignore (Ipcp.bind_port b eb);
  let hello = policy.Rina_core.Policy.routing.Rina_core.Policy.hello_interval in
  let converged () =
    Ipcp.is_enrolled a && Ipcp.is_enrolled r && Ipcp.is_enrolled b
    && Ipcp.lsdb_size a >= 3
    && Ipcp.lsdb_size r >= 3
    && Ipcp.lsdb_size b >= 3
  in
  let t = ref 0. in
  while (not (converged ())) && !t < 120. do
    t := !t +. hello;
    Sharded.run ~domains sh ~until:!t
  done;
  Sharded.run ~domains sh ~until:(!t +. (2. *. hello));
  let log = ref [] in
  let alloc_failed = ref false in
  Ipcp.register_app b (Types.apn "sink") ~on_flow:(fun fl ->
      fl.Ipcp.set_on_receive (fun sdu ->
          log :=
            (Engine.now e1, Int32.to_int (Bytes.get_int32_be sdu 0)) :: !log));
  let n = 40 in
  let base = Sharded.granted sh in
  Ipcp.allocate_flow a ~src:(Types.apn "src") ~dst:(Types.apn "sink") ~qos_id:1
    ~on_result:(fun res ->
      match res with
      | Ok fl ->
        let t0 = Engine.now e0 in
        for i = 0 to n - 1 do
          ignore
            (Engine.schedule_at e0
               ~time:(t0 +. (0.01 *. float_of_int i))
               (fun () ->
                 let sdu = Bytes.make 32 's' in
                 Bytes.set_int32_be sdu 0 (Int32.of_int i);
                 fl.Ipcp.send sdu))
        done
      | Error _ -> alloc_failed := true);
  ignore
    (Engine.schedule_at e0 ~time:(base +. kill_at) (fun () ->
         Link.set_up l1 false));
  ignore
    (Engine.schedule_at e0
       ~time:(base +. kill_at +. kill_for)
       (fun () -> Link.set_up l1 true));
  Sharded.run ~domains sh ~until:(base +. 15.);
  (List.rev !log, converged () && not !alloc_failed)

let prop_multipath_sharded_failover =
  QCheck.Test.make
    ~name:"multipath: random fault window, exactly-once, 1-vs-2 domain replay"
    ~count:6
    QCheck.(triple (int_range 0 100_000) (int_range 0 20) (int_range 1 25))
    (fun (seed, kill_slot, dur_slot) ->
      let kill_at = 0.02 +. (0.01 *. float_of_int kill_slot) in
      let kill_for = 0.02 *. float_of_int dur_slot in
      let log1, ok1 =
        run_sharded_failover_trial ~seed ~kill_at ~kill_for ~domains:1
      in
      let log2, ok2 =
        run_sharded_failover_trial ~seed ~kill_at ~kill_for ~domains:2
      in
      ok1 && ok2
      && List.map snd log1 = List.init 40 Fun.id
      && log1 = log2)

let test_sharded_build_validation () =
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Sharded.create: need at least one shard") (fun () ->
      ignore (Sharded.create ~shards:0 ~lookahead:0.01 ()));
  let t = Sharded.create ~shards:2 ~lookahead:0.01 () in
  (match
     Sharded.cross_link t ~src:0 ~dst:1 ~bit_rate:1e9 ~delay:0.001 ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delay below the lookahead accepted");
  match Sharded.cross_link t ~src:1 ~dst:1 ~bit_rate:1e9 ~delay:0.02 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self-link accepted"

let () =
  Alcotest.run "rina_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "loss",
        [
          Alcotest.test_case "extremes" `Quick test_loss_none_and_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_loss_bernoulli_rate;
          Alcotest.test_case "gilbert-elliott average" `Quick test_loss_gilbert_elliott_average;
        ] );
      ("chan", [ Alcotest.test_case "pair" `Quick test_chan_pair ]);
      ( "link",
        [
          Alcotest.test_case "latency" `Quick test_link_latency;
          Alcotest.test_case "serialization spacing" `Quick test_link_serialization_spacing;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "down + notify" `Quick test_link_down_drops_and_notifies;
          Alcotest.test_case "blackhole silent" `Quick test_link_blackhole_silent;
          Alcotest.test_case "loss" `Quick test_link_loss;
          Alcotest.test_case "directions independent" `Quick test_link_directions_independent;
        ] );
      ( "medium",
        [
          Alcotest.test_case "range and movement" `Quick test_medium_range_and_movement;
          Alcotest.test_case "edge loss grows" `Quick test_medium_edge_loss_grows;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record and gaps" `Quick test_trace;
          Alcotest.test_case "duplicate timestamps" `Quick test_trace_duplicate_gap;
          Alcotest.test_case "attach / timer events" `Quick test_trace_attach_timer_events;
          Alcotest.test_case "probe cadence" `Quick test_trace_probe;
          Alcotest.test_case "link drop reasons" `Quick test_trace_link_drop_reasons;
          Alcotest.test_case "jsonl roundtrip" `Quick test_trace_jsonl_roundtrip;
          Alcotest.test_case "corrupt jsonl rejected" `Quick test_trace_load_corrupt;
          Alcotest.test_case "snapshot timer" `Quick test_trace_snapshots;
          Alcotest.test_case "stream sink identical" `Quick
            test_trace_stream_sink_identical;
          Alcotest.test_case "sample-rate marker + scaling" `Quick
            test_trace_sample_ppm_marker;
          Alcotest.test_case "span join out of order" `Quick test_trace_span_join_out_of_order;
          Alcotest.test_case "2-DIF relay span tree" `Quick test_trace_relay_span_tree;
        ] );
      ( "fault",
        [
          Alcotest.test_case "plan events sorted + replayable" `Quick
            test_fault_events_sorted_and_replayable;
          Alcotest.test_case "window rejects empty interval" `Quick
            test_fault_window_rejects_empty;
          Alcotest.test_case "arm fires on schedule" `Quick
            test_fault_arm_fires_on_schedule;
          Alcotest.test_case "blackhole conservation" `Quick
            test_fault_blackhole_conservation;
          Alcotest.test_case "non-finite times rejected" `Quick
            test_fault_rejects_non_finite;
        ] );
      ( "mangle",
        [
          Alcotest.test_case "make validation" `Quick
            test_mangle_make_validation;
          Alcotest.test_case "flip_bit" `Quick test_mangle_flip_bit;
          Alcotest.test_case "decide deterministic" `Quick
            test_mangle_decide_deterministic;
          Alcotest.test_case "corrupt conservation" `Quick
            test_link_mangle_corrupt_conservation;
          Alcotest.test_case "duplicate conservation" `Quick
            test_link_mangle_duplicate_conservation;
          Alcotest.test_case "reorder conservation" `Quick
            test_link_mangle_reorder_conservation;
          Alcotest.test_case "holdback vs endpoint crash" `Quick
            test_link_holdback_vs_endpoint_crash;
          Alcotest.test_case "crash voids one direction" `Quick
            test_link_crash_is_directional;
          QCheck_alcotest.to_alcotest prop_mangled_exactly_once_and_replayable;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "dual-homed failover + recovery" `Quick
            test_multipath_failover_and_recovery;
          QCheck_alcotest.to_alcotest prop_multipath_sharded_failover;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "build validation" `Quick
            test_sharded_build_validation;
          QCheck_alcotest.to_alcotest prop_sharded_delivery_order;
        ] );
    ]
