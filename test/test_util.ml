(* Unit and property tests for the rina_util library. *)

module Prng = Rina_util.Prng
module Heap = Rina_util.Heap
module Stats = Rina_util.Stats
module Codec = Rina_util.Codec
module Ewma = Rina_util.Ewma
module Token_bucket = Rina_util.Token_bucket
module Metrics = Rina_util.Metrics
module Table = Rina_util.Table

let check = Alcotest.check

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_changes_stream () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let t = Prng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_float_bounds () =
  let t = Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Prng.float t 3.5 in
    Alcotest.(check bool) "0 <= v < 3.5" true (v >= 0. && v < 3.5)
  done

let test_prng_bernoulli_extremes () =
  let t = Prng.create 11 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "p=0" false (Prng.bernoulli t 0.);
    Alcotest.(check bool) "p=1" true (Prng.bernoulli t 1.)
  done

let test_prng_exponential_mean () =
  let t = Prng.create 13 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let v = Prng.exponential t 2.0 in
    Alcotest.(check bool) "positive" true (v >= 0.);
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_prng_shuffle_permutation () =
  let t = Prng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "multiset preserved" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let t = Prng.create 19 in
  let u = Prng.split t in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 t = Prng.bits64 u then incr same
  done;
  Alcotest.(check bool) "split stream distinct" true (!same < 4)

let test_prng_pick () =
  let t = Prng.create 21 in
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.pick t arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick t [||]))

let prop_prng_uniformish =
  QCheck.Test.make ~name:"prng int covers range" ~count:50
    QCheck.(int_range 2 40)
    (fun bound ->
      let t = Prng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Prng.int t bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

(* ---------- Heap ---------- *)

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.) int))) "pop none" None (Heap.pop h);
  Alcotest.(check (option (pair (float 0.) int))) "peek none" None (Heap.peek h)

let test_heap_sorted_output () =
  let h = Heap.create () in
  let keys = [ 5.; 1.; 4.; 1.5; 0.; 9.; 2. ] in
  List.iteri (fun i k -> Heap.push h k i) keys;
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check
    Alcotest.(list (float 0.))
    "ascending" (List.sort compare keys) (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ 10; 20; 30; 40 ];
  let order =
    List.init 4 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1)
  in
  check Alcotest.(list int) "insertion order on equal keys" [ 10; 20; 30; 40 ] order

let test_heap_peek_nondestructive () =
  let h = Heap.create () in
  Heap.push h 2. "b";
  Heap.push h 1. "a";
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a")) (Heap.peek h);
  check Alcotest.int "length unchanged" 2 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h (float_of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap sorts any float list" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* The heap against a reference model under random interleavings of
   push, pop and cancellation-compaction.  Every entry's value is its
   own sequence number (obtained via [reserve_seq]), so agreeing with
   the model's lexicographic (key, seq) minimum at every pop proves
   the drain order is nondecreasing in (key, seq) — i.e. compaction
   preserves heap order and FIFO tie-breaking, and reserved sequence
   numbers pushed out of order (the timer wheel's flush protocol)
   still land in reservation order on equal keys. *)
let prop_heap_interleaved_compaction =
  QCheck.Test.make ~name:"heap matches model under push/pop/cancel-compaction"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let h = Heap.create () in
      let model = ref [] in
      (* live (key, seq) pairs *)
      let ok = ref true in
      let model_min () =
        List.fold_left
          (fun acc kv ->
            match acc with
            | None -> Some kv
            | Some best -> if kv < best then Some kv else acc)
          None !model
      in
      let pop_check () =
        match (Heap.pop h, model_min ()) with
        | None, None -> ()
        | Some kv, Some mkv when kv = mkv ->
          model := List.filter (fun x -> x <> mkv) !model
        | _ -> ok := false
      in
      let push_seq k seq =
        Heap.push_with_seq h ~key:k ~seq seq;
        model := (k, seq) :: !model
      in
      for _ = 1 to 300 do
        match Prng.int rng 8 with
        | 0 | 1 | 2 ->
          let seq = Heap.reserve_seq h in
          push_seq (Prng.float rng 50.) seq
        | 3 | 4 -> pop_check ()
        | 5 ->
          (* cancel a random subset wholesale, as the engine's reap
             does for cancelled timers *)
          let doomed =
            List.filter_map
              (fun (_, s) -> if Prng.bernoulli rng 0.5 then Some s else None)
              !model
          in
          ignore (Heap.compact h ~keep:(fun s -> not (List.mem s doomed)));
          model := List.filter (fun (_, s) -> not (List.mem s doomed)) !model
        | _ ->
          (* two wheel-parked entries flushed in reverse reservation
             order, sometimes with equal keys: the FIFO tie must follow
             the reservation, not the push *)
          let seq1 = Heap.reserve_seq h in
          let seq2 = Heap.reserve_seq h in
          let k1 = Prng.float rng 50. in
          let k2 = if Prng.bernoulli rng 0.5 then k1 else Prng.float rng 50. in
          push_seq k2 seq2;
          push_seq k1 seq1
      done;
      while (not (Heap.is_empty h)) && !ok do
        pop_check ()
      done;
      !ok && !model = [])

(* ---------- Stats ---------- *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Stats.percentile s 50.));
  check Alcotest.int "count" 0 (Stats.count s);
  check Alcotest.string "summary" "n=0" (Stats.summary s)

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "variance" (32. /. 7.) (Stats.variance s);
  check (Alcotest.float 1e-9) "min" 2. (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 9. (Stats.max_value s);
  check (Alcotest.float 1e-9) "total" 40. (Stats.total s)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p0" 1. (Stats.percentile s 0.);
  check (Alcotest.float 1e-9) "p100" 100. (Stats.percentile s 100.);
  check (Alcotest.float 1e-9) "median" 50.5 (Stats.median s);
  (* Clamping out-of-range percentiles. *)
  check (Alcotest.float 1e-9) "p-5 clamps" 1. (Stats.percentile s (-5.));
  check (Alcotest.float 1e-9) "p200 clamps" 100. (Stats.percentile s 200.)

let test_stats_interleaved_sorting () =
  (* add after percentile must keep working (re-sort). *)
  let s = Stats.create () in
  Stats.add s 5.;
  ignore (Stats.median s);
  Stats.add s 1.;
  check (Alcotest.float 1e-9) "min updates" 1. (Stats.min_value s)

let prop_welford_matches_stats =
  QCheck.Test.make ~name:"welford matches direct variance" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 50) (float_bound_inclusive 100.))
    (fun xs ->
      let s = Stats.create () and w = Stats.Welford.create () in
      List.iter
        (fun x ->
          Stats.add s x;
          Stats.Welford.add w x)
        xs;
      let v1 = Stats.variance s and v2 = Stats.Welford.variance w in
      Float.abs (v1 -. v2) < 1e-6 *. Float.max 1. (Float.abs v1))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 3.; 9.9; -4.; 25. ];
  let counts = Stats.Histogram.counts h in
  check Alcotest.int "bin0 gets 0.5,1.5 and clamped -4" 3 counts.(0);
  check Alcotest.int "bin4 gets 9.9 and clamped 25" 2 counts.(4);
  check Alcotest.int "total" 6 (Stats.Histogram.total h);
  check Alcotest.int "edges" 6 (Array.length (Stats.Histogram.bin_edges h));
  Alcotest.check_raises "bad bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Stats.Histogram.create ~lo:0. ~hi:1. ~bins:0))

(* ---------- Codec ---------- *)

let test_codec_roundtrip_basics () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 200;
  Codec.Writer.u16 w 65000;
  Codec.Writer.u32 w 4_000_000_000;
  Codec.Writer.u64 w (-1L);
  Codec.Writer.f64 w 3.14159;
  Codec.Writer.bool w true;
  Codec.Writer.string w "hello";
  Codec.Writer.bytes w (Bytes.of_string "\x00\xff");
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  check Alcotest.int "u8" 200 (Codec.Reader.u8 r);
  check Alcotest.int "u16" 65000 (Codec.Reader.u16 r);
  check Alcotest.int "u32" 4_000_000_000 (Codec.Reader.u32 r);
  check Alcotest.int64 "u64" (-1L) (Codec.Reader.u64 r);
  check (Alcotest.float 1e-12) "f64" 3.14159 (Codec.Reader.f64 r);
  Alcotest.(check bool) "bool" true (Codec.Reader.bool r);
  check Alcotest.string "string" "hello" (Codec.Reader.string r);
  check Alcotest.bytes "bytes" (Bytes.of_string "\x00\xff") (Codec.Reader.bytes r);
  Codec.Reader.expect_end r

let test_codec_writer_bounds () =
  let w = Codec.Writer.create () in
  Alcotest.check_raises "u8 range" (Invalid_argument "Codec.Writer.u8: out of range")
    (fun () -> Codec.Writer.u8 w 256);
  Alcotest.check_raises "u16 range" (Invalid_argument "Codec.Writer.u16: out of range")
    (fun () -> Codec.Writer.u16 w (-1));
  Alcotest.check_raises "u32 range" (Invalid_argument "Codec.Writer.u32: out of range")
    (fun () -> Codec.Writer.u32 w (-5))

let test_codec_truncated () =
  let r = Codec.Reader.create (Bytes.of_string "\x01") in
  ignore (Codec.Reader.u8 r);
  Alcotest.(check bool) "truncated u32 raises" true
    (try
       ignore (Codec.Reader.u32 r);
       false
     with Codec.Reader.Decode_error _ -> true)

let test_codec_trailing () =
  let r = Codec.Reader.create (Bytes.of_string "ab") in
  ignore (Codec.Reader.u8 r);
  Alcotest.(check bool) "trailing detected" true
    (try
       Codec.Reader.expect_end r;
       false
     with Codec.Reader.Decode_error _ -> true)

let test_codec_bad_bool () =
  let r = Codec.Reader.create (Bytes.of_string "\x07") in
  Alcotest.(check bool) "bool 7 rejected" true
    (try
       ignore (Codec.Reader.bool r);
       false
     with Codec.Reader.Decode_error _ -> true)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"codec string roundtrip" ~count:200 QCheck.string (fun s ->
      let w = Codec.Writer.create () in
      Codec.Writer.string w s;
      let r = Codec.Reader.create (Codec.Writer.contents w) in
      let out = Codec.Reader.string r in
      Codec.Reader.expect_end r;
      String.equal s out)

(* ---------- Ewma ---------- *)

let test_ewma () =
  let e = Ewma.create ~alpha:0.5 in
  Alcotest.(check bool) "uninitialized" false (Ewma.initialized e);
  Ewma.add e 10.;
  check (Alcotest.float 1e-9) "first" 10. (Ewma.value e);
  Ewma.add e 20.;
  check (Alcotest.float 1e-9) "second" 15. (Ewma.value e);
  Alcotest.check_raises "alpha 0" (Invalid_argument "Ewma.create: alpha not in (0,1]")
    (fun () -> ignore (Ewma.create ~alpha:0.))

let test_ewma_negative_samples () =
  (* EFCP folds 0/1 mark indicators into an Ewma and clamps the read
     to [0,1]; the Ewma itself must pass negatives through unchanged
     so that clamp is the only policy applied. *)
  let e = Ewma.create ~alpha:0.5 in
  Ewma.add e (-4.);
  check (Alcotest.float 1e-9) "negative preserved" (-4.) (Ewma.value e);
  Ewma.add e 0.;
  check (Alcotest.float 1e-9) "decays toward zero" (-2.) (Ewma.value e);
  check (Alcotest.float 1e-9) "efcp-style clamp floors at 0" 0.
    (Float.min 1. (Float.max 0. (Ewma.value e)));
  Alcotest.(check bool) "nan before first sample" true
    (Float.is_nan (Ewma.value (Ewma.create ~alpha:0.3)))

(* ---------- Token bucket ---------- *)

let test_token_bucket () =
  let tb = Token_bucket.create ~rate:10. ~burst:5. in
  Alcotest.(check bool) "initial burst" true (Token_bucket.try_take tb ~now:0. 5.);
  Alcotest.(check bool) "empty" false (Token_bucket.try_take tb ~now:0. 1.);
  Alcotest.(check bool) "refilled" true (Token_bucket.try_take tb ~now:0.5 4.9);
  check (Alcotest.float 1e-6) "cap at burst" 5. (Token_bucket.available tb ~now:100.);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Token_bucket.create: rate must be positive") (fun () ->
      ignore (Token_bucket.create ~rate:0. ~burst:1.))

let test_token_bucket_edges () =
  let tb = Token_bucket.create ~rate:2. ~burst:4. in
  (* Burst exhaustion, then the exact wake-up the EFCP pacer sleeps on. *)
  Alcotest.(check bool) "drain whole burst" true (Token_bucket.try_take tb ~now:0. 4.);
  check (Alcotest.float 1e-9) "delay until one token" 0.5
    (Token_bucket.delay_until tb ~now:0. 1.);
  check (Alcotest.float 1e-9) "over-burst ask clamps to burst" 2.
    (Token_bucket.delay_until tb ~now:0. 100.);
  (* A negative take would silently mint tokens; both entry points
     must reject it. *)
  Alcotest.check_raises "negative take"
    (Invalid_argument "Token_bucket.try_take: negative take") (fun () ->
      ignore (Token_bucket.try_take tb ~now:0. (-1.)));
  Alcotest.check_raises "negative delay query"
    (Invalid_argument "Token_bucket.delay_until: negative take") (fun () ->
      ignore (Token_bucket.delay_until tb ~now:0. (-1.)));
  (* The clock running backwards (never on the virtual engine, but
     cheap to guarantee) must not refill. *)
  Alcotest.(check bool) "refill to burst by t=10" true
    (Token_bucket.try_take tb ~now:10. 4.);
  check (Alcotest.float 1e-9) "no retroactive refill" 0.
    (Token_bucket.available tb ~now:5.);
  Alcotest.check_raises "zero burst"
    (Invalid_argument "Token_bucket.create: burst must be positive") (fun () ->
      ignore (Token_bucket.create ~rate:1. ~burst:0.))

(* ---------- Metrics ---------- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m "a";
  Metrics.add m "b" 5;
  check Alcotest.int "a" 2 (Metrics.get m "a");
  check Alcotest.int "b" 5 (Metrics.get m "b");
  check Alcotest.int "absent" 0 (Metrics.get m "zzz");
  check Alcotest.(list (pair string int)) "sorted" [ ("a", 2); ("b", 5) ] (Metrics.to_list m);
  Metrics.reset m;
  check Alcotest.int "reset" 0 (Metrics.get m "a")


(* ---------- Flight recorder ---------- *)

module Flight = Rina_util.Flight

(* Exports must not leak hash order: whatever the insertion order,
   counter and gauge listings come back alphabetical. *)
let test_metrics_sorted_export () =
  let m = Metrics.create () in
  let names = [ "zeta"; "alpha"; "mu"; "beta"; "omega"; "kappa"; "a"; "z" ] in
  List.iteri (fun i n -> Metrics.add m n (i + 1)) names;
  List.iter (fun n -> Metrics.set_gauge m n 1.) names;
  let sorted = List.sort compare names in
  check
    Alcotest.(list string)
    "counters sorted" sorted
    (List.map fst (Metrics.to_list m));
  check
    Alcotest.(list string)
    "gauges sorted" sorted
    (List.map fst (Metrics.gauges m))

let test_metrics_clamp () =
  let m = Metrics.create () in
  Metrics.add m "a" 5;
  Metrics.add m "a" (-9);
  check Alcotest.int "clamped at zero" 0 (Metrics.get m "a");
  Metrics.add m "a" 3;
  check Alcotest.int "counts up from zero" 3 (Metrics.get m "a")

(* Golden rendering: counters, gauges and histograms, each
   alphabetically, in that order. *)
let test_metrics_pp_golden () =
  let m = Metrics.create () in
  Metrics.incr m "tx";
  Metrics.add m "rx_bytes" 300;
  Metrics.set_gauge m "depth" 2.5;
  Metrics.observe m ~lo:0. ~hi:1. ~bins:2 "lat" 0.25;
  Metrics.observe m ~lo:0. ~hi:1. ~bins:2 "lat" 0.75;
  Metrics.observe m ~lo:0. ~hi:1. ~bins:2 "lat" 0.8;
  check Alcotest.string "golden"
    "rx_bytes=300 tx=1 depth=2.5 lat=[1;2]\n"
    (Format.asprintf "%a" Metrics.pp m)

let test_span_of () =
  check Alcotest.bool "nonzero" true (Flight.span_of ~flow:0 ~seq:0 <> 0);
  check Alcotest.int "deterministic"
    (Flight.span_of ~flow:77 ~seq:3)
    (Flight.span_of ~flow:77 ~seq:3);
  check Alcotest.bool "seq separates" true
    (Flight.span_of ~flow:77 ~seq:3 <> Flight.span_of ~flow:77 ~seq:4);
  check Alcotest.bool "flow separates" true
    (Flight.span_of ~flow:77 ~seq:3 <> Flight.span_of ~flow:78 ~seq:3)

let test_reason_strings () =
  let all =
    [ Flight.R_queue_full; Flight.R_link_down; Flight.R_loss; Flight.R_crc;
      Flight.R_decode; Flight.R_ttl_expired; Flight.R_no_route;
      Flight.R_ingress_filter; Flight.R_stale; Flight.R_duplicate;
      Flight.R_blackhole; Flight.R_corrupt; Flight.R_dup;
      Flight.R_reorder_overflow; Flight.R_other "because" ]
  in
  List.iter
    (fun r ->
      check Alcotest.bool "roundtrip" true
        (Flight.reason_of_string (Flight.reason_to_string r) = r))
    all

let test_flight_buf () =
  let b = Flight.Buf.create () in
  check Alcotest.int "empty" 0 (Flight.Buf.length b);
  let ev i =
    { Flight.time = float_of_int i; component = "c"; kind = Flight.Pdu_sent;
      flow = 0; rank = 0; seq = i; size = 0; span = 0 }
  in
  for i = 1 to 1000 do
    Flight.Buf.add b (ev i)
  done;
  check Alcotest.int "length" 1000 (Flight.Buf.length b);
  check Alcotest.int "get keeps order" 17 (Flight.Buf.get b 16).Flight.seq;
  let sum = ref 0 in
  Flight.Buf.iter (fun e -> sum := !sum + e.Flight.seq) b;
  check Alcotest.int "iter sees all" (1000 * 1001 / 2) !sum;
  Flight.Buf.clear b;
  check Alcotest.int "cleared" 0 (Flight.Buf.length b);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Flight.Buf.get: out of bounds") (fun () ->
      ignore (Flight.Buf.get b 0))

(* PRNG-driven event generator; times come from int generators so they
   are always finite and exactly representable. *)
let event_gen =
  let open QCheck.Gen in
  let reason =
    oneof
      [
        oneofl
          [ Flight.R_queue_full; Flight.R_link_down; Flight.R_loss;
            Flight.R_crc; Flight.R_decode; Flight.R_ttl_expired;
            Flight.R_no_route; Flight.R_ingress_filter; Flight.R_stale;
            Flight.R_duplicate; Flight.R_blackhole; Flight.R_corrupt;
            Flight.R_dup; Flight.R_reorder_overflow ];
        (* must not collide with a built-in reason name, or
           reason_of_string canonicalises it *)
        map (fun s -> Flight.R_other ("x-" ^ s)) (string_size ~gen:printable (return 4));
      ]
  in
  let kind =
    oneof
      [
        oneofl
          [ Flight.Pdu_sent; Flight.Pdu_recvd; Flight.Enqueued;
            Flight.Dequeued; Flight.Timer_set; Flight.Timer_fired;
            Flight.Retransmit; Flight.Handoff; Flight.Route_update ];
        map (fun r -> Flight.Pdu_dropped r) reason;
        map (fun s -> Flight.Custom s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let* time = map (fun n -> float_of_int n /. 64.) (int_bound 1_000_000) in
  let* component = string_size ~gen:printable (int_bound 16) in
  let* kind = kind in
  let* flow = int_bound 0xFFFFFF in
  let* rank = int_bound 0xFFFF in
  let* seq = int_bound 0xFFFFFF in
  let* size = int_bound 0xFFFF in
  let* span = int_bound 0x3FFFFFFFFFFF in
  return { Flight.time; component; kind; flow; rank; seq; size; span }

let prop_flight_binary_roundtrip =
  QCheck.Test.make ~count:200 ~name:"flight binary codec roundtrips"
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 20) event_gen))
    (fun events ->
      match Flight.decode_events (Flight.encode_events events) with
      | Ok decoded -> decoded = events
      | Error _ -> false)

let prop_flight_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"flight JSON codec roundtrips"
    (QCheck.make event_gen) (fun e ->
      match Flight.event_of_json (Flight.event_to_json e) with
      | Ok decoded -> decoded = e
      | Error _ -> false)

let test_flight_json_garbage () =
  List.iter
    (fun line ->
      match Flight.event_of_json line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [ ""; "{"; "{}"; "not json"; "{\"t\":1}"; "{\"t\":1,\"c\":\"x\"}";
      "{\"t\":1,\"c\":\"x\",\"k\":\"nope\"}";
      "{\"t\":1,\"c\":\"x\",\"k\":\"pdu_sent\"}trailing" ]

let test_flight_buf_ring () =
  let b = Flight.Buf.create ~capacity:8 () in
  let ev i =
    { Flight.time = float_of_int i; component = "c"; kind = Flight.Pdu_sent;
      flow = 0; rank = 0; seq = i; size = 0; span = 0 }
  in
  for i = 1 to 5 do Flight.Buf.add b (ev i) done;
  check Alcotest.int "under capacity: nothing dropped" 0 (Flight.Buf.dropped b);
  for i = 6 to 20 do Flight.Buf.add b (ev i) done;
  check Alcotest.int "ring full" 8 (Flight.Buf.length b);
  check Alcotest.int "exact drop count" 12 (Flight.Buf.dropped b);
  check Alcotest.int "oldest retained" 13 (Flight.Buf.get b 0).Flight.seq;
  check Alcotest.int "newest retained" 20 (Flight.Buf.get b 7).Flight.seq;
  check
    (Alcotest.list Alcotest.int)
    "newest window, oldest-first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.Flight.seq) (Flight.Buf.to_list b));
  Flight.Buf.clear b;
  check Alcotest.int "clear resets length" 0 (Flight.Buf.length b);
  check Alcotest.int "clear resets dropped" 0 (Flight.Buf.dropped b);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Flight.Buf.create: negative capacity") (fun () ->
      ignore (Flight.Buf.create ~capacity:(-1) ()))

(* ---------- sampling ---------- *)

let test_span_kept_deterministic () =
  let ppm = Flight.ppm_of_rate 0.01 in
  for i = 1 to 1000 do
    let span = Flight.span_of ~flow:9 ~seq:i in
    check Alcotest.bool "same decision on every call" true
      (Flight.span_kept ~keep_ppm:ppm span
      = Flight.span_kept ~keep_ppm:ppm span)
  done;
  check Alcotest.bool "ppm 1e6 keeps everything" true
    (Flight.span_kept ~keep_ppm:1_000_000 (Flight.span_of ~flow:1 ~seq:1))

let prop_span_kept_monotone_in_rate =
  QCheck.Test.make ~count:300 ~name:"span_kept monotone in keep rate"
    QCheck.(make Gen.(triple (int_bound 0xFFFFFF) (int_range 1 999_999) (int_range 1 999_999)))
    (fun (seq, p1, p2) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      let span = Flight.span_of ~flow:3 ~seq in
      (not (Flight.span_kept ~keep_ppm:lo span))
      || Flight.span_kept ~keep_ppm:hi span)

let test_span_kept_rate () =
  (* The hash is deterministic, so the observed keep fraction over a
     fixed population is a constant of the code; pin it near the target
     rate.  60k spans at 1% → expect ~600, allow ±40%. *)
  let ppm = Flight.ppm_of_rate 0.01 in
  let kept = ref 0 in
  for seq = 1 to 60_000 do
    if Flight.span_kept ~keep_ppm:ppm (Flight.span_of ~flow:42 ~seq) then
      incr kept
  done;
  check Alcotest.bool
    (Printf.sprintf "keep fraction near 1%% (got %d/60000)" !kept)
    true
    (!kept > 360 && !kept < 840)

let test_event_kept_landmarks () =
  let ppm = 1 in  (* keep essentially nothing by span *)
  check Alcotest.bool "drops always kept" true
    (Flight.event_kept ~keep_ppm:ppm ~span:0
       (Flight.Pdu_dropped Flight.R_loss));
  check Alcotest.bool "custom always kept" true
    (Flight.event_kept ~keep_ppm:ppm ~span:0 (Flight.Custom "probe"));
  check Alcotest.bool "handoff always kept" true
    (Flight.event_kept ~keep_ppm:ppm ~span:0 Flight.Handoff);
  check Alcotest.bool "route_update always kept" true
    (Flight.event_kept ~keep_ppm:ppm ~span:0 Flight.Route_update);
  check Alcotest.bool "span-less data event shed" false
    (Flight.event_kept ~keep_ppm:ppm ~span:0 Flight.Pdu_sent);
  check Alcotest.bool "full rate keeps span-less" true
    (Flight.event_kept ~keep_ppm:1_000_000 ~span:0 Flight.Pdu_sent)

(* ---------- Sketch ---------- *)

module Sketch = Rina_util.Sketch
module Telemetry = Rina_util.Telemetry

let hist_of_list xs =
  let h = Sketch.Hist.create () in
  List.iter (Sketch.Hist.add h) xs;
  h

let hist_eq a b =
  Sketch.Hist.count a = Sketch.Hist.count b
  && Sketch.Hist.zero_count a = Sketch.Hist.zero_count b
  && Sketch.Hist.buckets a = Sketch.Hist.buckets b

(* Positive finite values with the occasional exact zero. *)
let samples_gen =
  QCheck.Gen.(
    list_size (int_bound 100)
      (map (fun n -> float_of_int n /. 64.) (int_bound 1_000_000)))

let prop_hist_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"hist merge is commutative"
    (QCheck.make (QCheck.Gen.pair samples_gen samples_gen))
    (fun (xs, ys) ->
      let ab = hist_of_list xs in
      Sketch.Hist.merge_into ~into:ab (hist_of_list ys);
      let ba = hist_of_list ys in
      Sketch.Hist.merge_into ~into:ba (hist_of_list xs);
      hist_eq ab ba)

let prop_hist_merge_associative =
  QCheck.Test.make ~count:100 ~name:"hist merge is associative"
    (QCheck.make (QCheck.Gen.triple samples_gen samples_gen samples_gen))
    (fun (xs, ys, zs) ->
      (* (x ⊕ y) ⊕ z *)
      let left = hist_of_list xs in
      Sketch.Hist.merge_into ~into:left (hist_of_list ys);
      Sketch.Hist.merge_into ~into:left (hist_of_list zs);
      (* x ⊕ (y ⊕ z) *)
      let yz = hist_of_list ys in
      Sketch.Hist.merge_into ~into:yz (hist_of_list zs);
      let right = hist_of_list xs in
      Sketch.Hist.merge_into ~into:right yz;
      hist_eq left right)

let prop_hist_merge_is_union =
  QCheck.Test.make ~count:100 ~name:"hist merge equals adding everything"
    (QCheck.make (QCheck.Gen.pair samples_gen samples_gen))
    (fun (xs, ys) ->
      let merged = hist_of_list xs in
      Sketch.Hist.merge_into ~into:merged (hist_of_list ys);
      hist_eq merged (hist_of_list (xs @ ys)))

let test_hist_quantile_accuracy () =
  let h = Sketch.Hist.create () in
  for i = 1 to 10_000 do
    Sketch.Hist.add h (float_of_int i /. 100.)  (* 0.01 .. 100 *)
  done;
  (* log-bucketed with gamma = 2^(1/8): relative error <= ~9% *)
  List.iter
    (fun p ->
      let exact = p *. 100. in
      let est = Sketch.Hist.quantile h p in
      check Alcotest.bool
        (Printf.sprintf "q%.2f within gamma (est %g, exact %g)" p est exact)
        true
        (Float.abs (est -. exact) /. exact < 0.09))
    [ 0.5; 0.9; 0.99 ]

let test_series_cache_coherent () =
  (* The bounds cache must not mis-bucket adds that hop between
     intervals, revisit an earlier one, or batch with ~n. *)
  let s = Sketch.Series.create ~bucket:0.5 in
  List.iter (Sketch.Series.add s) [ 0.1; 0.2; 1.7; 0.3; 0.6; 1.9; 0.45 ];
  Sketch.Series.add ~n:3 s 1.8;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "per-interval counts"
    [ (0, 4); (1, 1); (3, 5) ]
    (Sketch.Series.counts s);
  check Alcotest.int "total" 10 (Sketch.Series.total s)

(* ---------- Telemetry ---------- *)

let test_telemetry_jsonl_roundtrip () =
  let t = Telemetry.create ~series_bucket:0.25 () in
  let y = Telemetry.tally t in
  y.Flight.t_events <- 1000;
  y.Flight.t_sent <- 400;
  y.Flight.t_recvd <- 390;
  y.Flight.t_dropped <- 10;
  y.Flight.t_retransmit <- 7;
  y.Flight.t_timer <- 150;
  Telemetry.count t "handoff";
  Telemetry.add_sample t "latency" 0.012;
  Telemetry.add_sample t "latency" 0.019;
  Telemetry.add_sample t "probe:q" 4.;
  Telemetry.set_latency_ppm t 10_000;
  ignore (Telemetry.snap t ~now:1.0);
  ignore (Telemetry.snap t ~now:2.0);
  let text = Telemetry.to_jsonl t in
  match Telemetry.of_jsonl text with
  | Error e -> Alcotest.failf "of_jsonl failed: %s" e
  | Ok t' ->
    check Alcotest.string "canonical JSONL round-trips byte-identically"
      text (Telemetry.to_jsonl t');
    check Alcotest.int "counter survives" 400 (Telemetry.counter t' "sent");
    check Alcotest.int "latency ppm survives" 10_000 (Telemetry.latency_ppm t');
    check Alcotest.int "snapshots survive" 2
      (List.length (Telemetry.snapshots t'))

let test_telemetry_merge () =
  let mk sent dropped lat =
    let t = Telemetry.create () in
    (Telemetry.tally t).Flight.t_sent <- sent;
    (Telemetry.tally t).Flight.t_dropped <- dropped;
    List.iter (Telemetry.add_sample t "latency") lat;
    t
  in
  let a = mk 10 1 [ 0.1; 0.2 ] and b = mk 5 2 [ 0.3 ] in
  Telemetry.merge_into ~into:a b;
  check Alcotest.int "counters sum" 15 (Telemetry.counter a "sent");
  check Alcotest.int "drops sum" 3 (Telemetry.counter a "dropped");
  match Telemetry.hist a "latency" with
  | None -> Alcotest.fail "merged latency hist missing"
  | Some h -> check Alcotest.int "hist samples sum" 3 (Sketch.Hist.count h)

let test_telemetry_observe_kept_only () =
  (* observe is the tap half: it sees kept events and does span-latency
     matching; the tally (not observe) owns the raw counters. *)
  let t = Telemetry.create () in
  Telemetry.set_latency_ppm t 1_000_000;
  let ev time kind =
    { Flight.time; component = "x"; kind; flow = 1; rank = 0; seq = 1;
      size = 100; span = 77 }
  in
  Telemetry.observe t (ev 1.0 Flight.Pdu_sent);
  Telemetry.observe t (ev 1.25 Flight.Pdu_recvd);
  (match Telemetry.hist t "latency" with
  | None -> Alcotest.fail "latency hist missing"
  | Some h ->
    check Alcotest.int "one span matched" 1 (Sketch.Hist.count h);
    check Alcotest.bool "latency ~0.25" true
      (Float.abs (Sketch.Hist.quantile h 0.5 -. 0.25) < 0.05));
  Telemetry.observe t (ev 2.0 (Flight.Pdu_dropped Flight.R_queue_full));
  match Telemetry.series t "drop:queue_full" with
  | None -> Alcotest.fail "drop series missing"
  | Some s -> check Alcotest.int "drop timeline bumped" 1 (Sketch.Series.total s)

(* ---------- Table ---------- *)

(* ---------- Backoff ---------- *)

let test_backoff_doubles_and_caps () =
  let b = Rina_util.Backoff.make ~base:0.5 ~cap:3.0 () in
  check (Alcotest.float 1e-9) "1st" 0.5 (Rina_util.Backoff.next b);
  check (Alcotest.float 1e-9) "2nd" 1.0 (Rina_util.Backoff.next b);
  check (Alcotest.float 1e-9) "3rd" 2.0 (Rina_util.Backoff.next b);
  check (Alcotest.float 1e-9) "capped" 3.0 (Rina_util.Backoff.next b);
  check (Alcotest.float 1e-9) "stays capped" 3.0 (Rina_util.Backoff.next b);
  check Alcotest.int "attempts counted" 5 (Rina_util.Backoff.attempt b);
  Rina_util.Backoff.reset b;
  check Alcotest.int "reset" 0 (Rina_util.Backoff.attempt b);
  check (Alcotest.float 1e-9) "base again" 0.5 (Rina_util.Backoff.next b)

let test_backoff_delay_for_matches_next () =
  let b = Rina_util.Backoff.make ~base:0.25 () in
  for n = 0 to 9 do
    check (Alcotest.float 1e-9)
      (Printf.sprintf "delay_for %d" n)
      (Rina_util.Backoff.next b)
      (Rina_util.Backoff.delay_for ~base:0.25 n)
  done

let test_backoff_jitter_bounds () =
  let rng = Prng.create 7 in
  for n = 0 to 20 do
    let full = Rina_util.Backoff.delay_for ~base:0.1 ~cap:5.0 n in
    let d = Rina_util.Backoff.delay_for ~rng ~base:0.1 ~cap:5.0 n in
    Alcotest.(check bool)
      (Printf.sprintf "jitter in [d/2, d] at %d" n)
      true
      (d >= (full /. 2.) -. 1e-12 && d <= full +. 1e-12)
  done;
  (* same seed, same stream: deterministic *)
  let a = Prng.create 42 and b = Prng.create 42 in
  for n = 0 to 10 do
    check (Alcotest.float 1e-12)
      (Printf.sprintf "replay %d" n)
      (Rina_util.Backoff.delay_for ~rng:a ~base:0.3 n)
      (Rina_util.Backoff.delay_for ~rng:b ~base:0.3 n)
  done

(* The raw doubling must never escape [0, cap], however absurd the
   attempt count: the exponent is clamped before the shift, so 2^n
   cannot overflow or go negative on its way to the cap. *)
let prop_backoff_delay_in_range =
  QCheck.Test.make ~name:"backoff delay in [0, cap] up to 10k attempts" ~count:300
    QCheck.(
      triple (int_bound 10_000)
        (float_range 1e-6 10.)
        (pair (float_range 1. 100.) (int_range 0 1_000_000)))
    (fun (n, base, (cap_mult, seed)) ->
      let cap = base *. cap_mult in
      let rng = Prng.create seed in
      let bare = Rina_util.Backoff.delay_for ~base ~cap n in
      let jit = Rina_util.Backoff.delay_for ~rng ~base ~cap n in
      bare >= 0. && bare <= cap +. 1e-12 && jit >= 0. && jit <= cap +. 1e-12)

let test_backoff_rejects_bad_args () =
  Alcotest.check_raises "base <= 0"
    (Invalid_argument "Backoff: base must be positive") (fun () ->
      ignore (Rina_util.Backoff.make ~base:0. ()));
  Alcotest.check_raises "cap < base"
    (Invalid_argument "Backoff: cap must be >= base") (fun () ->
      ignore (Rina_util.Backoff.make ~base:2.0 ~cap:1.0 ()));
  Alcotest.check_raises "negative attempt"
    (Invalid_argument "Backoff.delay_for: negative attempt") (fun () ->
      ignore (Rina_util.Backoff.delay_for ~base:1.0 (-1)))

let test_table () =
  let t = Table.create ~title:"T" ~columns:[ "x"; "y" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t "%d | %s" 3 "four";
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (Rina_util.Metrics.get (Rina_util.Metrics.create ()) "noop" = 0
     && String.length s > 0
     &&
     let contains needle =
       let n = String.length needle and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
       go 0
     in
     contains "== T ==" && contains "four" && contains "1");
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns (table \"T\")") (fun () ->
      Table.add_row t [ "only-one" ])

let () =
  Alcotest.run "rina_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_prng_seed_changes_stream;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          QCheck_alcotest.to_alcotest prop_prng_uniformish;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "sorted output" `Quick test_heap_sorted_output;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek nondestructive" `Quick test_heap_peek_nondestructive;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_interleaved_compaction;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "interleaved sorting" `Quick test_stats_interleaved_sorting;
          Alcotest.test_case "histogram" `Quick test_histogram;
          QCheck_alcotest.to_alcotest prop_welford_matches_stats;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_codec_roundtrip_basics;
          Alcotest.test_case "writer bounds" `Quick test_codec_writer_bounds;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "trailing" `Quick test_codec_trailing;
          Alcotest.test_case "bad bool" `Quick test_codec_bad_bool;
          QCheck_alcotest.to_alcotest prop_codec_string_roundtrip;
        ] );
      ( "misc",
        [
          Alcotest.test_case "ewma" `Quick test_ewma;
          Alcotest.test_case "ewma negative samples" `Quick test_ewma_negative_samples;
          Alcotest.test_case "token bucket" `Quick test_token_bucket;
          Alcotest.test_case "token bucket edges" `Quick test_token_bucket_edges;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "table" `Quick test_table;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "doubles and caps" `Quick
            test_backoff_doubles_and_caps;
          Alcotest.test_case "delay_for matches next" `Quick
            test_backoff_delay_for_matches_next;
          Alcotest.test_case "jitter bounds" `Quick test_backoff_jitter_bounds;
          Alcotest.test_case "rejects bad args" `Quick
            test_backoff_rejects_bad_args;
          QCheck_alcotest.to_alcotest prop_backoff_delay_in_range;
        ] );
      ( "flight",
        [
          Alcotest.test_case "metrics clamp" `Quick test_metrics_clamp;
          Alcotest.test_case "metrics sorted export" `Quick test_metrics_sorted_export;
          Alcotest.test_case "metrics pp golden" `Quick test_metrics_pp_golden;
          Alcotest.test_case "span_of" `Quick test_span_of;
          Alcotest.test_case "reason strings" `Quick test_reason_strings;
          Alcotest.test_case "buffer" `Quick test_flight_buf;
          Alcotest.test_case "ring buffer" `Quick test_flight_buf_ring;
          Alcotest.test_case "json rejects garbage" `Quick test_flight_json_garbage;
          QCheck_alcotest.to_alcotest prop_flight_binary_roundtrip;
          QCheck_alcotest.to_alcotest prop_flight_json_roundtrip;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "span_kept deterministic" `Quick
            test_span_kept_deterministic;
          Alcotest.test_case "span_kept rate" `Quick test_span_kept_rate;
          Alcotest.test_case "landmark kinds" `Quick test_event_kept_landmarks;
          QCheck_alcotest.to_alcotest prop_span_kept_monotone_in_rate;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "quantile accuracy" `Quick
            test_hist_quantile_accuracy;
          Alcotest.test_case "series cache coherent" `Quick
            test_series_cache_coherent;
          QCheck_alcotest.to_alcotest prop_hist_merge_commutative;
          QCheck_alcotest.to_alcotest prop_hist_merge_associative;
          QCheck_alcotest.to_alcotest prop_hist_merge_is_union;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick
            test_telemetry_jsonl_roundtrip;
          Alcotest.test_case "merge" `Quick test_telemetry_merge;
          Alcotest.test_case "observe kept events" `Quick
            test_telemetry_observe_kept_only;
        ] );
    ]
