(* Protocol-machine tests: EFCP under controlled loss/reordering and
   the RMT's forwarding, filtering and scheduling. *)

module Engine = Rina_sim.Engine
module Efcp = Rina_core.Efcp
module Policy = Rina_core.Policy
module Pdu = Rina_core.Pdu
module Rmt = Rina_core.Rmt
module Chan = Rina_sim.Chan
module Metrics = Rina_util.Metrics

let check = Alcotest.check

let base_cfg =
  {
    Policy.default_efcp with
    Policy.window = 8;
    init_rto = 0.1;
    min_rto = 0.02;
    max_rtx = 6;
  }

(* Wire two EFCP machines together through the engine with an optional
   per-PDU drop decision (applied to DTP and/or ACK PDUs), a delivery
   delay and optional extra delay per PDU (for reordering). *)
type harness = {
  engine : Engine.t;
  sender : Efcp.t;
  receiver : Efcp.t;
  delivered : string list ref;
  sender_errors : string list ref;
}

let make_harness ?(cfg = base_cfg) ?(rcv_cfg = base_cfg) ?(in_order = true)
    ?(drop_data = fun _ -> false) ?(drop_ack = fun _ -> false)
    ?(delay_of = fun _ -> 0.001) () =
  let engine = Engine.create () in
  let delivered = ref [] in
  let sender_errors = ref [] in
  let sender_ref = ref None and receiver_ref = ref None in
  let data_count = ref 0 and ack_count = ref 0 in
  let to_receiver (pdu : Pdu.t) =
    incr data_count;
    if not (drop_data !data_count) then
      ignore
        (Engine.schedule engine ~delay:(delay_of !data_count) (fun () ->
             match !receiver_ref with
             | Some r -> Efcp.handle_pdu r pdu
             | None -> ()));
    0
  in
  let to_sender (pdu : Pdu.t) =
    incr ack_count;
    if not (drop_ack !ack_count) then
      ignore
        (Engine.schedule engine ~delay:0.001 (fun () ->
             match !sender_ref with
             | Some s -> Efcp.handle_pdu s pdu
             | None -> ()));
    0
  in
  let sender =
    Efcp.create engine ~config:cfg ~in_order ~local_cep:1 ~remote_cep:2 ~qos_id:1
      ~send_pdu:to_receiver
      ~deliver:(fun _ -> ())
      ~on_error:(fun e -> sender_errors := e :: !sender_errors)
      ()
  in
  let receiver =
    Efcp.create engine ~config:rcv_cfg ~in_order ~local_cep:2 ~remote_cep:1 ~qos_id:1
      ~send_pdu:to_sender
      ~deliver:(fun b -> delivered := Bytes.to_string b :: !delivered)
      ~on_error:(fun _ -> ())
      ()
  in
  sender_ref := Some sender;
  receiver_ref := Some receiver;
  { engine; sender; receiver; delivered; sender_errors }

let payloads n = List.init n (fun i -> Printf.sprintf "pdu-%03d" i)

let send_all h msgs = List.iter (fun m -> Efcp.send h.sender (Bytes.of_string m)) msgs

let run h seconds = Engine.run ~until:(Engine.now h.engine +. seconds) h.engine

let test_efcp_in_order_no_loss () =
  let h = make_harness () in
  let msgs = payloads 50 in
  send_all h msgs;
  run h 5.;
  check Alcotest.(list string) "all delivered in order" msgs (List.rev !(h.delivered));
  check Alcotest.int "no rtx" 0 (Metrics.get (Efcp.metrics h.sender) "pdus_rtx");
  Alcotest.(check bool) "srtt measured" true (Efcp.srtt h.sender <> None)

let test_efcp_window_respected () =
  let h = make_harness ~drop_ack:(fun _ -> true) () in
  send_all h (payloads 50);
  (* No acks ever return: the sender may have at most [window] PDUs in
     flight and the rest in backlog. *)
  Alcotest.(check bool) "in_flight <= window" true (Efcp.in_flight h.sender <= 8);
  check Alcotest.int "backlog holds the rest" (50 - Efcp.in_flight h.sender)
    (Efcp.backlog h.sender)

let test_efcp_recovers_from_data_loss () =
  (* Drop every 7th data transmission. *)
  let h = make_harness ~drop_data:(fun n -> n mod 7 = 0) () in
  let msgs = payloads 60 in
  send_all h msgs;
  run h 30.;
  check Alcotest.(list string) "delivered all in order" msgs (List.rev !(h.delivered));
  Alcotest.(check bool) "retransmissions happened" true
    (Metrics.get (Efcp.metrics h.sender) "pdus_rtx" > 0)

let test_efcp_recovers_from_ack_loss () =
  let h = make_harness ~drop_ack:(fun n -> n mod 3 = 0) () in
  let msgs = payloads 40 in
  send_all h msgs;
  run h 30.;
  check Alcotest.(list string) "cumulative acks cover gaps" msgs (List.rev !(h.delivered))

let test_efcp_reordering_in_order_delivery () =
  (* Every 5th PDU is delayed well past its successors. *)
  let h = make_harness ~delay_of:(fun n -> if n mod 5 = 0 then 0.05 else 0.001) () in
  let msgs = payloads 40 in
  send_all h msgs;
  run h 20.;
  check Alcotest.(list string) "resequenced" msgs (List.rev !(h.delivered));
  Alcotest.(check bool) "ooo buffered" true
    (Metrics.get (Efcp.metrics h.receiver) "ooo_buffered" > 0)

let test_efcp_duplicate_suppression () =
  let h = make_harness ~drop_ack:(fun n -> n <= 2) () in
  (* First acks die so the sender retransmits already-received data. *)
  send_all h (payloads 3);
  run h 10.;
  check Alcotest.(list string) "no duplicates delivered" (payloads 3)
    (List.rev !(h.delivered));
  Alcotest.(check bool) "duplicates detected" true
    (Metrics.get (Efcp.metrics h.receiver) "dup_rcvd" > 0)

let test_efcp_gbn_discards_and_recovers () =
  let cfg = { base_cfg with Policy.rtx_strategy = Policy.Go_back_n } in
  let h = make_harness ~cfg ~rcv_cfg:cfg ~drop_data:(fun n -> n = 3) () in
  let msgs = payloads 10 in
  send_all h msgs;
  run h 20.;
  check Alcotest.(list string) "gbn delivers all" msgs (List.rev !(h.delivered));
  Alcotest.(check bool) "receiver discarded out-of-order" true
    (Metrics.get (Efcp.metrics h.receiver) "gbn_discards" > 0)

let test_efcp_no_rtx_unreliable () =
  let cfg = { base_cfg with Policy.rtx_strategy = Policy.No_rtx } in
  let h = make_harness ~cfg ~rcv_cfg:cfg ~in_order:false ~drop_data:(fun n -> n = 2) () in
  send_all h (payloads 5);
  run h 5.;
  check Alcotest.int "4 of 5 delivered" 4 (List.length !(h.delivered));
  check Alcotest.int "no acks" 0 (Metrics.get (Efcp.metrics h.receiver) "acks_sent");
  check Alcotest.int "no rtx" 0 (Metrics.get (Efcp.metrics h.sender) "pdus_rtx")

let test_efcp_unreliable_ordered_drops_stale () =
  let cfg = { base_cfg with Policy.rtx_strategy = Policy.No_rtx } in
  (* Delay PDU 2 so it arrives after 3..5: with in_order it must be
     dropped as stale. *)
  let h =
    make_harness ~cfg ~rcv_cfg:cfg ~in_order:true
      ~delay_of:(fun n -> if n = 2 then 0.05 else 0.001)
      ()
  in
  send_all h (payloads 5);
  run h 5.;
  check Alcotest.int "stale dropped" 1
    (Metrics.get (Efcp.metrics h.receiver) "stale_dropped");
  check Alcotest.int "4 delivered" 4 (List.length !(h.delivered))

let test_efcp_sender_gives_up () =
  let h = make_harness ~drop_data:(fun _ -> true) () in
  send_all h (payloads 3);
  run h 60.;
  Alcotest.(check bool) "flow error reported once" true
    (List.length !(h.sender_errors) = 1);
  check Alcotest.int "nothing delivered" 0 (List.length !(h.delivered))

let test_efcp_stop_and_wait () =
  let cfg = { base_cfg with Policy.window = 1 } in
  let h = make_harness ~cfg ~rcv_cfg:cfg () in
  let msgs = payloads 10 in
  send_all h msgs;
  Alcotest.(check bool) "at most 1 in flight" true (Efcp.in_flight h.sender <= 1);
  run h 10.;
  check Alcotest.(list string) "delivered" msgs (List.rev !(h.delivered))

let test_efcp_delayed_acks_aggregate () =
  let rcv_cfg = { base_cfg with Policy.ack_delay = 0.05 } in
  let h = make_harness ~rcv_cfg () in
  send_all h (payloads 30);
  run h 20.;
  check Alcotest.int "all delivered" 30 (List.length !(h.delivered));
  Alcotest.(check bool) "fewer acks than PDUs" true
    (Metrics.get (Efcp.metrics h.receiver) "acks_sent" < 30)

let test_efcp_close_stops_everything () =
  let h = make_harness () in
  send_all h (payloads 5);
  Efcp.close h.sender;
  Efcp.close h.sender;
  (* idempotent *)
  run h 5.;
  Efcp.send h.sender (Bytes.of_string "after close");
  run h 1.;
  Alcotest.(check bool) "no error, no crash" true (!(h.sender_errors) = [])

let test_efcp_debug_string () =
  let h = make_harness () in
  send_all h (payloads 2);
  Alcotest.(check bool) "debug non-empty" true (String.length (Efcp.debug h.sender) > 0)

let test_efcp_sack_repairs_before_rto () =
  (* With sack_blocks > 0 the receiver advertises its reorder buffer and
     the sender repairs the hole from the ack alone — an RTO big enough
     to dominate the run proves the fast path did the work. *)
  let cfg =
    { base_cfg with Policy.sack_blocks = 4; init_rto = 30.; min_rto = 30. }
  in
  let h = make_harness ~cfg ~rcv_cfg:cfg ~drop_data:(fun n -> n = 3) () in
  let msgs = payloads 8 in
  send_all h msgs;
  run h 5.;
  check Alcotest.(list string) "hole repaired without an RTO" msgs
    (List.rev !(h.delivered));
  Alcotest.(check bool) "repair was a retransmission" true
    (Metrics.get (Efcp.metrics h.sender) "pdus_rtx" > 0);
  check Alcotest.int "no rto fired" 0
    (Metrics.get (Efcp.metrics h.sender) "rto_fired");
  check Alcotest.int "sack payloads decoded cleanly" 0
    (Metrics.get (Efcp.metrics h.sender) "sack_decode_errors")

let test_efcp_reorder_window_overflow () =
  (* A tiny reorder window: once the hole at seq 0 has 2 successors
     buffered, further out-of-order PDUs are shed (counted, not
     delivered out of order) and recovered by retransmission. *)
  let cfg = { base_cfg with Policy.congestion_control = false } in
  let rcv_cfg = { cfg with Policy.reorder_window = 2 } in
  let h = make_harness ~cfg ~rcv_cfg ~drop_data:(fun n -> n = 1) () in
  let msgs = payloads 8 in
  send_all h msgs;
  run h 30.;
  check Alcotest.(list string) "still exactly-once in order" msgs
    (List.rev !(h.delivered));
  Alcotest.(check bool) "overflow shed some PDUs" true
    (Metrics.get (Efcp.metrics h.receiver) "ooo_overflow" > 0)

let test_efcp_dup_cache_suppression () =
  (* Unreliable unordered flows have no sequencing state to catch
     link-level duplicates; the dup ring does.  Every PDU is delivered
     twice by the "link" — with max_dup_cache the copies are suppressed,
     without it they reach the application. *)
  let deliver_twice ~max_dup_cache =
    let cfg =
      {
        base_cfg with
        Policy.rtx_strategy = Policy.No_rtx;
        max_dup_cache;
      }
    in
    let engine = Engine.create () in
    let delivered = ref [] in
    let receiver_ref = ref None in
    let to_receiver (pdu : Pdu.t) =
      List.iter
        (fun d ->
          ignore
            (Engine.schedule engine ~delay:d (fun () ->
                 match !receiver_ref with
                 | Some r -> Efcp.handle_pdu r pdu
                 | None -> ())))
        [ 0.001; 0.002 ];
      0
    in
    let sender =
      Efcp.create engine ~config:cfg ~in_order:false ~local_cep:1 ~remote_cep:2
        ~qos_id:0 ~send_pdu:to_receiver
        ~deliver:(fun _ -> ())
        ~on_error:(fun _ -> ())
        ()
    in
    let receiver =
      Efcp.create engine ~config:cfg ~in_order:false ~local_cep:2 ~remote_cep:1
        ~qos_id:0
        ~send_pdu:(fun _ -> 0)
        ~deliver:(fun b -> delivered := Bytes.to_string b :: !delivered)
        ~on_error:(fun _ -> ())
        ()
    in
    receiver_ref := Some receiver;
    List.iter (fun m -> Efcp.send sender (Bytes.of_string m)) (payloads 6);
    Engine.run engine;
    (List.rev !delivered, Metrics.get (Efcp.metrics receiver) "dup_suppressed")
  in
  let with_cache, suppressed = deliver_twice ~max_dup_cache:16 in
  check Alcotest.(list string) "cache: exactly once" (payloads 6) with_cache;
  check Alcotest.int "every copy suppressed" 6 suppressed;
  let without_cache, suppressed0 = deliver_twice ~max_dup_cache:0 in
  check Alcotest.int "no cache: copies reach the app" 12
    (List.length without_cache);
  check Alcotest.int "nothing suppressed" 0 suppressed0

let test_efcp_ecn_echo_and_backoff () =
  (* A congestion-experienced mark on a data PDU must come back on the
     ack (receiver echo), cut the sender's window at most once per
     window of data, and never count as loss — no retransmissions, no
     RTOs, every SDU still delivered in order. *)
  let cfg =
    { base_cfg with Policy.window = 16; congestion_control = true; max_rtx = 20 }
  in
  let engine = Engine.create () in
  let delivered = ref [] in
  let sender_ref = ref None and receiver_ref = ref None in
  let marked_data = ref 0 in
  let seen_data = ref 0 in
  let to_receiver (pdu : Pdu.t) =
    (* the "congested relay": a finite mid-stream congestion episode —
       stamp ECN on transiting data PDUs 17..24, after the flow has an
       RTT estimate and an open window.  (Marking from the very first
       PDU would pin cwnd at its floor of 2, where each marked ack
       really does open a new tiny window and cuts again — the
       once-per-window rule is only visible on an established flow.) *)
    incr seen_data;
    let pdu =
      if !seen_data > 16 && !seen_data <= 24 then begin
        incr marked_data;
        { pdu with Pdu.flags = pdu.Pdu.flags lor Pdu.flag_ecn }
      end
      else pdu
    in
    ignore
      (Engine.schedule engine ~delay:0.001 (fun () ->
           match !receiver_ref with
           | Some r -> Efcp.handle_pdu r pdu
           | None -> ()));
    0
  in
  let to_sender (pdu : Pdu.t) =
    ignore
      (Engine.schedule engine ~delay:0.001 (fun () ->
           match !sender_ref with
           | Some s -> Efcp.handle_pdu s pdu
           | None -> ()));
    0
  in
  let sender =
    Efcp.create engine ~config:cfg ~in_order:true ~local_cep:1 ~remote_cep:2
      ~qos_id:1 ~send_pdu:to_receiver
      ~deliver:(fun _ -> ())
      ~on_error:(fun _ -> ())
      ()
  in
  let receiver =
    Efcp.create engine ~config:cfg ~in_order:true ~local_cep:2 ~remote_cep:1
      ~qos_id:1 ~send_pdu:to_sender
      ~deliver:(fun b -> delivered := Bytes.to_string b :: !delivered)
      ~on_error:(fun _ -> ())
      ()
  in
  sender_ref := Some sender;
  receiver_ref := Some receiver;
  let msgs = payloads 48 in
  List.iter (fun m -> Efcp.send sender (Bytes.of_string m)) msgs;
  Engine.run engine;
  let sm = Efcp.metrics sender and rm = Efcp.metrics receiver in
  check Alcotest.(list string) "all delivered in order" msgs (List.rev !delivered);
  check Alcotest.int "receiver saw every mark" !marked_data
    (Metrics.get rm "ecn_rcvd");
  Alcotest.(check bool) "sender saw echoes" true (Metrics.get sm "ecn_echoes" > 0);
  let backoffs = Metrics.get sm "ecn_backoffs" in
  Alcotest.(check bool) "sender backed off" true (backoffs > 0);
  Alcotest.(check bool) "at most one cut per window of data" true
    (backoffs < Metrics.get sm "ecn_echoes");
  check Alcotest.int "marks are not losses: no rtx" 0 (Metrics.get sm "pdus_rtx");
  check Alcotest.int "marks are not losses: no rto" 0 (Metrics.get sm "rto_fired")

let prop_efcp_reliable_under_random_loss =
  (* Whatever independent loss pattern hits data and acks (capped so
     the flow is not declared dead), a reliable flow must deliver every
     SDU exactly once and in order. *)
  QCheck.Test.make ~name:"efcp exactly-once in-order under random loss" ~count:40
    QCheck.(triple (int_range 0 10_000) (int_range 0 30) (int_range 5 40))
    (fun (seed, loss_pct, n) ->
      let rng = Rina_util.Prng.create seed in
      let cfg = { base_cfg with Policy.max_rtx = 30 } in
      let h =
        make_harness ~cfg ~rcv_cfg:cfg
          ~drop_data:(fun _ -> Rina_util.Prng.int rng 100 < loss_pct)
          ~drop_ack:(fun _ -> Rina_util.Prng.int rng 100 < loss_pct)
          ~delay_of:(fun _ -> 0.001 +. Rina_util.Prng.float rng 0.004)
          ()
      in
      let msgs = payloads n in
      send_all h msgs;
      run h 120.;
      List.rev !(h.delivered) = msgs && !(h.sender_errors) = [])

(* ---------- RMT ---------- *)

let own_addr = 10

let make_rmt ?(scheduler = Policy.Fifo) engine =
  Rmt.create engine ~own_address:(fun () -> own_addr) ~scheduler ()

let frame_of pdu = Rina_core.Sdu_protection.protect (Pdu.encode pdu)

let data_pdu ~dst ?(src = 99) ?(ttl = 8) ?(qos_id = 0) () =
  Pdu.make ~pdu_type:Pdu.Dtp ~dst_addr:dst ~src_addr:src ~dst_cep:1 ~src_cep:1
    ~qos_id ~ttl (Bytes.of_string "x")

let test_rmt_local_delivery_and_relay () =
  let engine = Engine.create () in
  let rmt = make_rmt engine in
  let up = ref [] in
  Rmt.set_deliver rmt (fun port pdu -> up := (port, pdu.Pdu.dst_addr) :: !up);
  let a_near, a_far = Chan.pair () in
  let b_near, b_far = Chan.pair () in
  let p_a = Rmt.add_port rmt a_near in
  let p_b = Rmt.add_port rmt b_near in
  Rmt.set_forwarding rmt (fun pdu -> if pdu.Pdu.dst_addr = 20 then Some p_b else None);
  let relayed = ref [] in
  b_far.Chan.set_receiver (fun f -> relayed := f :: !relayed);
  (* Frame for us: delivered up with the ingress port. *)
  a_far.Chan.send (frame_of (data_pdu ~dst:own_addr ()));
  Engine.run engine;
  check Alcotest.int "delivered up" 1 (List.length !up);
  (match !up with
   | [ (Some p, addr) ] ->
     check Alcotest.int "ingress port" p_a p;
     check Alcotest.int "addr" own_addr addr
   | _ -> Alcotest.fail "bad delivery");
  (* Frame for 20: relayed out of port b with TTL decremented. *)
  a_far.Chan.send (frame_of (data_pdu ~dst:20 ~ttl:8 ()));
  Engine.run engine;
  check Alcotest.int "relayed" 1 (List.length !relayed);
  (match Pdu.decode (Option.get (Rina_core.Sdu_protection.verify (List.hd !relayed))) with
   | Ok pdu -> check Alcotest.int "ttl decremented" 7 pdu.Pdu.ttl
   | Error e -> Alcotest.fail e);
  check Alcotest.int "relay metric" 1 (Metrics.get (Rmt.metrics rmt) "relayed")

let test_rmt_ttl_expiry () =
  let engine = Engine.create () in
  let rmt = make_rmt engine in
  let a_near, a_far = Chan.pair () in
  ignore (Rmt.add_port rmt a_near);
  Rmt.set_forwarding rmt (fun _ -> None);
  a_far.Chan.send (frame_of (data_pdu ~dst:20 ~ttl:1 ()));
  Engine.run engine;
  check Alcotest.int "ttl_expired" 1 (Metrics.get (Rmt.metrics rmt) "ttl_expired")

let test_rmt_no_route () =
  let engine = Engine.create () in
  let rmt = make_rmt engine in
  let a_near, a_far = Chan.pair () in
  ignore (Rmt.add_port rmt a_near);
  Rmt.set_forwarding rmt (fun _ -> None);
  a_far.Chan.send (frame_of (data_pdu ~dst:20 ()));
  Engine.run engine;
  check Alcotest.int "no_route" 1 (Metrics.get (Rmt.metrics rmt) "no_route")

let test_rmt_crc_and_decode_drops () =
  let engine = Engine.create () in
  let rmt = make_rmt engine in
  let a_near, a_far = Chan.pair () in
  ignore (Rmt.add_port rmt a_near);
  a_far.Chan.send (Bytes.of_string "not even a frame");
  let corrupt = frame_of (data_pdu ~dst:own_addr ()) in
  Bytes.set corrupt 3 '\xFF';
  a_far.Chan.send corrupt;
  (* Valid CRC over an undecodable body. *)
  a_far.Chan.send (Rina_core.Sdu_protection.protect (Bytes.of_string "junk"));
  Engine.run engine;
  check Alcotest.int "crc dropped" 2 (Metrics.get (Rmt.metrics rmt) "crc_dropped");
  check Alcotest.int "decode dropped" 1 (Metrics.get (Rmt.metrics rmt) "decode_dropped")

let test_rmt_ingress_filter () =
  let engine = Engine.create () in
  let rmt = make_rmt engine in
  let up = ref 0 in
  Rmt.set_deliver rmt (fun _ _ -> incr up);
  Rmt.set_ingress_filter rmt (fun _ pdu -> pdu.Pdu.src_addr <> 666);
  let a_near, a_far = Chan.pair () in
  ignore (Rmt.add_port rmt a_near);
  a_far.Chan.send (frame_of (data_pdu ~dst:own_addr ~src:666 ()));
  a_far.Chan.send (frame_of (data_pdu ~dst:own_addr ~src:1 ()));
  Engine.run engine;
  check Alcotest.int "one passed" 1 !up;
  check Alcotest.int "one filtered" 1 (Metrics.get (Rmt.metrics rmt) "ingress_dropped")

let test_rmt_send_on_port_and_removal () =
  let engine = Engine.create () in
  let rmt = make_rmt engine in
  let a_near, a_far = Chan.pair () in
  let p = Rmt.add_port rmt a_near in
  let got = ref 0 in
  a_far.Chan.set_receiver (fun _ -> incr got);
  Rmt.send_on_port rmt p (data_pdu ~dst:0 ());
  Engine.run engine;
  check Alcotest.int "sent" 1 !got;
  check Alcotest.(list int) "ports" [ p ] (Rmt.ports rmt);
  Rmt.remove_port rmt p;
  check Alcotest.(list int) "removed" [] (Rmt.ports rmt);
  Rmt.send_on_port rmt p (data_pdu ~dst:0 ());
  check Alcotest.int "send on removed counts no_route" 1
    (Metrics.get (Rmt.metrics rmt) "no_route")

let test_rmt_priority_scheduling () =
  let engine = Engine.create () in
  let rmt = make_rmt ~scheduler:Policy.Priority_queueing engine in
  Rmt.set_classify rmt (fun pdu -> pdu.Pdu.qos_id);
  let a_near, a_far = Chan.pair () in
  (* Slow shaped port: 80 kb/s so ~10ms per 100-byte frame. *)
  let p = Rmt.add_port rmt ~rate:80_000. a_near in
  let order = ref [] in
  a_far.Chan.set_receiver (fun f ->
      match Pdu.decode (Option.get (Rina_core.Sdu_protection.verify f)) with
      | Ok pdu -> order := pdu.Pdu.qos_id :: !order
      | Error _ -> ());
  (* Enqueue: one low, then burst of low and high; the first low is
     already in service, but among the queued ones all highs must beat
     all lows. *)
  Rmt.send_on_port rmt p (data_pdu ~dst:0 ~qos_id:0 ());
  for _ = 1 to 3 do
    Rmt.send_on_port rmt p (data_pdu ~dst:0 ~qos_id:0 ());
    Rmt.send_on_port rmt p (data_pdu ~dst:0 ~qos_id:5 ())
  done;
  Engine.run engine;
  let served = List.rev !order in
  (match served with
   | first :: rest ->
     check Alcotest.int "first was in service" 0 first;
     check Alcotest.(list int) "high before low" [ 5; 5; 5; 0; 0; 0 ] rest
   | [] -> Alcotest.fail "nothing served");
  check Alcotest.int "queue drained" 0 (Rmt.queue_depth rmt p)

let test_rmt_ecn_marking () =
  (* A shaped port driven past [mark_threshold] marks Dtp frames with
     the configured probability from a private per-label stream —
     identical runs mark identical frames — and overflow past the hard
     capacity of a queue already over the threshold is accounted
     R_congestion, not plain queue_full. *)
  let congestion =
    {
      Policy.mark_threshold = 16;
      mark_probability = 0.5;
      pushback = false;
      admission_max_pending = 0;
      admission_backoff = 0.;
    }
  in
  let run () =
    let engine = Engine.create () in
    let rmt =
      Rmt.create engine ~own_address:(fun () -> own_addr) ~scheduler:Policy.Fifo
        ~congestion ()
    in
    let a_near, a_far = Chan.pair () in
    let p = Rmt.add_port rmt ~rate:80_000. a_near in
    let marked = ref [] in
    let n = ref 0 in
    a_far.Chan.set_receiver (fun f ->
        incr n;
        if Pdu.Peek.is_dtp f && Pdu.frame_has_ecn f then marked := !n :: !marked);
    for _ = 1 to 300 do
      Rmt.send_on_port rmt p (data_pdu ~dst:0 ())
    done;
    Engine.run engine;
    (List.rev !marked, Rmt.metrics rmt)
  in
  let marked, m = run () in
  Alcotest.(check bool) "some frames marked" true (List.length marked > 0);
  check Alcotest.int "metric matches wire" (List.length marked)
    (Metrics.get m "ecn_marked");
  Alcotest.(check bool) "over-capacity arrivals congestion-dropped" true
    (Metrics.get m "congestion_dropped" > 0);
  check Alcotest.int "every drop was a congestion drop"
    (Metrics.get m "queue_dropped")
    (Metrics.get m "congestion_dropped");
  let marked', _ = run () in
  check Alcotest.(list int) "identical runs mark identical frames" marked marked'

let test_rmt_marking_disabled () =
  (* mark_threshold = 0 (the default policy) must never mark or
     reclassify drops, whatever the load. *)
  let engine = Engine.create () in
  let rmt =
    Rmt.create engine ~own_address:(fun () -> own_addr) ~scheduler:Policy.Fifo ()
  in
  let a_near, a_far = Chan.pair () in
  let p = Rmt.add_port rmt ~rate:80_000. a_near in
  let any_marked = ref false in
  a_far.Chan.set_receiver (fun f ->
      if Pdu.frame_has_ecn f then any_marked := true);
  for _ = 1 to 300 do
    Rmt.send_on_port rmt p (data_pdu ~dst:0 ())
  done;
  Engine.run engine;
  let m = Rmt.metrics rmt in
  Alcotest.(check bool) "nothing marked" false !any_marked;
  check Alcotest.int "no ecn counter" 0 (Metrics.get m "ecn_marked");
  check Alcotest.int "no congestion drops" 0 (Metrics.get m "congestion_dropped");
  Alcotest.(check bool) "plain queue_full drops still counted" true
    (Metrics.get m "queue_dropped" > 0)

let test_rmt_drr_shares () =
  let engine = Engine.create () in
  let rmt = make_rmt ~scheduler:(Policy.Drr 200) engine in
  Rmt.set_classify rmt (fun pdu -> pdu.Pdu.qos_id);
  let a_near, a_far = Chan.pair () in
  let p = Rmt.add_port rmt ~rate:1_000_000. a_near in
  let served = Array.make 8 0 in
  let first_30 = ref [] in
  a_far.Chan.set_receiver (fun f ->
      match Pdu.decode (Option.get (Rina_core.Sdu_protection.verify f)) with
      | Ok pdu ->
        served.(pdu.Pdu.qos_id) <- served.(pdu.Pdu.qos_id) + 1;
        if List.length !first_30 < 30 then first_30 := pdu.Pdu.qos_id :: !first_30
      | Error _ -> ());
  for _ = 1 to 40 do
    Rmt.send_on_port rmt p (data_pdu ~dst:0 ~qos_id:1 ());
    Rmt.send_on_port rmt p (data_pdu ~dst:0 ~qos_id:3 ())
  done;
  Engine.run engine;
  check Alcotest.int "all class-1 served" 40 served.(1);
  check Alcotest.int "all class-3 served" 40 served.(3);
  (* DRR interleaves at round granularity: across the first 30
     departures the weight-4 class must get roughly twice the
     bandwidth of the weight-2 class (and both must appear). *)
  let c3 = List.length (List.filter (fun q -> q = 3) !first_30) in
  let c1 = List.length (List.filter (fun q -> q = 1) !first_30) in
  Alcotest.(check bool) "both classes served early" true (c1 > 0 && c3 > 0);
  Alcotest.(check bool) "weighted share ~2:1" true (c3 >= 16 && c3 <= 24)

let () =
  Alcotest.run "efcp_rmt"
    [
      ( "efcp",
        [
          Alcotest.test_case "in-order no loss" `Quick test_efcp_in_order_no_loss;
          Alcotest.test_case "window respected" `Quick test_efcp_window_respected;
          Alcotest.test_case "recovers from data loss" `Quick test_efcp_recovers_from_data_loss;
          Alcotest.test_case "recovers from ack loss" `Quick test_efcp_recovers_from_ack_loss;
          Alcotest.test_case "reordering resequenced" `Quick test_efcp_reordering_in_order_delivery;
          Alcotest.test_case "duplicate suppression" `Quick test_efcp_duplicate_suppression;
          Alcotest.test_case "go-back-n" `Quick test_efcp_gbn_discards_and_recovers;
          Alcotest.test_case "unreliable no-rtx" `Quick test_efcp_no_rtx_unreliable;
          Alcotest.test_case "unreliable ordered stale drop" `Quick
            test_efcp_unreliable_ordered_drops_stale;
          Alcotest.test_case "sender gives up" `Quick test_efcp_sender_gives_up;
          Alcotest.test_case "stop-and-wait" `Quick test_efcp_stop_and_wait;
          Alcotest.test_case "delayed acks aggregate" `Quick test_efcp_delayed_acks_aggregate;
          Alcotest.test_case "close idempotent" `Quick test_efcp_close_stops_everything;
          Alcotest.test_case "debug string" `Quick test_efcp_debug_string;
          Alcotest.test_case "sack repairs before rto" `Quick
            test_efcp_sack_repairs_before_rto;
          Alcotest.test_case "reorder window overflow" `Quick
            test_efcp_reorder_window_overflow;
          Alcotest.test_case "ecn echo and backoff" `Quick
            test_efcp_ecn_echo_and_backoff;
          Alcotest.test_case "dup cache suppression" `Quick
            test_efcp_dup_cache_suppression;
          QCheck_alcotest.to_alcotest prop_efcp_reliable_under_random_loss;
        ] );
      ( "rmt",
        [
          Alcotest.test_case "local delivery and relay" `Quick test_rmt_local_delivery_and_relay;
          Alcotest.test_case "ttl expiry" `Quick test_rmt_ttl_expiry;
          Alcotest.test_case "no route" `Quick test_rmt_no_route;
          Alcotest.test_case "crc and decode drops" `Quick test_rmt_crc_and_decode_drops;
          Alcotest.test_case "ingress filter" `Quick test_rmt_ingress_filter;
          Alcotest.test_case "send on port / removal" `Quick test_rmt_send_on_port_and_removal;
          Alcotest.test_case "priority scheduling" `Quick test_rmt_priority_scheduling;
          Alcotest.test_case "drr shares" `Quick test_rmt_drr_shares;
          Alcotest.test_case "ecn marking deterministic" `Quick test_rmt_ecn_marking;
          Alcotest.test_case "marking disabled by default" `Quick
            test_rmt_marking_disabled;
        ] );
    ]
